package core

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/sim"
	"repro/internal/tm"
)

// Batteries are built from fair runs only: every live process keeps taking
// steps (adversary strategies, lockstep rotation, round-robin) or is
// crashed (solo runs). Liveness verdicts are only meaningful on fair
// executions (Section 3.2).

// ConsensusBattery builds the Figure 1(a) evidence for the register-only
// commit-adopt consensus implementation: the bivalence-adversary run and
// the deterministic lockstep livelock (the violations), plus solo-after-
// crash, crash-mid-run and n-process round-robin runs (the positive
// evidence).
func ConsensusBattery(n int) (*Battery, error) {
	b := &Battery{Impl: "commit-adopt-OF(registers)"}

	adv := &adversary.Bivalence{
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		V1:        0,
		V2:        1,
	}
	bres, err := adv.Run(140)
	if err != nil {
		return nil, fmt.Errorf("core: bivalence adversary failed: %w", err)
	}
	b.Runs = append(b.Runs, BatteryRun{
		Name: "bivalence-adversary",
		Exec: liveness.FromResult(bres.Run, 0),
	})

	lock := sim.Run(sim.Config{
		Procs:     2,
		Object:    consensus.NewCommitAdoptOF(2),
		Env:       consensus.ProposeForever(map[int]history.Value{1: 0, 2: 1}),
		Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
		MaxSteps:  400,
	})
	b.Runs = append(b.Runs, BatteryRun{
		Name: "lockstep-livelock",
		Exec: liveness.FromResult(lock, 100),
	})

	for p := 1; p <= 2; p++ {
		other := 3 - p
		solo := sim.Run(sim.Config{
			Procs:  2,
			Object: consensus.NewCommitAdoptOF(2),
			Env:    consensus.ProposeForever(map[int]history.Value{1: 0, 2: 1}),
			Scheduler: sim.Seq(
				sim.Fixed([]sim.Decision{{Proc: other, Crash: true}}),
				sim.Limit(sim.Solo(p), 200),
			),
			MaxSteps: 220,
		})
		b.Runs = append(b.Runs, BatteryRun{
			Name: fmt.Sprintf("solo-p%d-after-crash", p),
			Exec: liveness.FromResult(solo, 50),
		})
	}

	crashMid := sim.Run(sim.Config{
		Procs:  2,
		Object: consensus.NewCommitAdoptOF(2),
		Env:    consensus.ProposeForever(map[int]history.Value{1: 0, 2: 1}),
		Scheduler: sim.Seq(
			sim.Limit(sim.Alternate(1, 2), 9),
			sim.Fixed([]sim.Decision{{Proc: 2, Crash: true}}),
			sim.Limit(sim.Solo(1), 200),
		),
		MaxSteps: 250,
	})
	b.Runs = append(b.Runs, BatteryRun{
		Name: "crash-mid-run-then-solo",
		Exec: liveness.FromResult(crashMid, 50),
	})

	values := make(map[int]history.Value, n)
	for p := 1; p <= n; p++ {
		values[p] = p * 11
	}
	rr := sim.Run(sim.Config{
		Procs:     n,
		Object:    consensus.NewCommitAdoptOF(n),
		Env:       consensus.ProposeForever(values),
		Scheduler: sim.Limit(&sim.RoundRobin{}, 300*n),
		MaxSteps:  300 * n,
	})
	b.Runs = append(b.Runs, BatteryRun{
		Name: "round-robin-all",
		Exec: liveness.FromResult(rr, 60*n),
	})
	return b, nil
}

// tmKind selects a TM implementation family for battery construction.
type tmKind int

const (
	kindGlobalCAS tmKind = iota + 1
	kindI12
)

func (k tmKind) name() string {
	if k == kindGlobalCAS {
		return "global-CAS(AGP)"
	}
	return "I(1,2)(Algorithm 1)"
}

func (k tmKind) make(n int) sim.Object {
	if k == kindGlobalCAS {
		return tm.NewGlobalCAS(n)
	}
	return tm.NewI12(n)
}

// tmBattery builds the shared run set for a TM implementation: the
// starvation adversary, lockstep contention, solo-after-crash runs, and an
// n-process round-robin random workload. For I12 it additionally includes
// the Section 5.3 S3 adversary run (three lockstep starters), which is the
// run that separates (1,2) from (1,3).
func tmBattery(kind tmKind, n int) *Battery {
	b := &Battery{Impl: kind.name()}

	starve := adversary.NewTMStarve(1, 2)
	sres := starve.Attack(kind.make(2), 2, 600)
	b.Runs = append(b.Runs, BatteryRun{
		Name: "tmstarve-adversary",
		Exec: liveness.FromResult(sres, 150),
	})

	contention := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	lock := sim.Run(sim.Config{
		Procs:     2,
		Object:    kind.make(2),
		Env:       tm.TxnLoop(contention),
		Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
		MaxSteps:  400,
	})
	b.Runs = append(b.Runs, BatteryRun{
		Name: "lockstep-contention",
		Exec: liveness.FromResult(lock, 100),
	})

	for p := 1; p <= 2; p++ {
		other := 3 - p
		solo := sim.Run(sim.Config{
			Procs:  2,
			Object: kind.make(2),
			Env:    tm.TxnLoop(contention),
			Scheduler: sim.Seq(
				sim.Fixed([]sim.Decision{{Proc: other, Crash: true}}),
				sim.Limit(sim.Solo(p), 200),
			),
			MaxSteps: 220,
		})
		b.Runs = append(b.Runs, BatteryRun{
			Name: fmt.Sprintf("solo-p%d-after-crash", p),
			Exec: liveness.FromResult(solo, 50),
		})
	}

	rr := sim.Run(sim.Config{
		Procs:     n,
		Object:    kind.make(n),
		Env:       tm.TxnLoop(tm.RandomWorkload(7, n, 3, 2)),
		Scheduler: sim.Limit(&sim.RoundRobin{}, 300*n),
		MaxSteps:  300 * n,
	})
	b.Runs = append(b.Runs, BatteryRun{
		Name: "round-robin-random-workload",
		Exec: liveness.FromResult(rr, 60*n),
	})

	if kind == kindI12 && n >= 3 {
		s3 := adversary.NewS3(3)
		s3res := s3.Attack(kind.make(3), 900)
		b.Runs = append(b.Runs, BatteryRun{
			Name: "s3-adversary",
			Exec: liveness.FromResult(s3res, 200),
		})
	}
	return b
}

// TMOpacityBatteries builds the Figure 1(b) evidence: the GlobalCAS
// battery (certifying the l=1 column) and the I12 battery.
func TMOpacityBatteries(n int) []*Battery {
	return []*Battery{
		tmBattery(kindGlobalCAS, n),
		tmBattery(kindI12, n),
	}
}

// TMPropertySBattery builds the Section 5.3 evidence: the I12 battery
// including the S3 adversary run.
func TMPropertySBattery(n int) *Battery {
	return tmBattery(kindI12, n)
}

// Figure1a classifies the consensus plane (panel a).
func Figure1a(n int) (*PlaneClassification, error) {
	b, err := ConsensusBattery(n)
	if err != nil {
		return nil, err
	}
	return ClassifyPlane(n, "agreement+validity (registers only)", nil, []*Battery{b}), nil
}

// Figure1b classifies the TM opacity plane (panel b).
func Figure1b(n int) *PlaneClassification {
	return ClassifyPlane(n, "opacity", liveness.TMGood(), TMOpacityBatteries(n))
}

// Section53Plane classifies the (l,k) plane against the Section 5.3
// property S with the I12 implementation, exhibiting two incomparable
// minimal black points.
func Section53Plane(n int) *PlaneClassification {
	return ClassifyPlane(n, "S (opacity + timestamp rule)", liveness.TMGood(),
		[]*Battery{TMPropertySBattery(n)})
}
