package core

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/sim"
)

func TestNXConsensusTotalOrder(t *testing.T) {
	c, err := NXConsensus(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Monotone(); err != nil {
		t.Fatalf("classification must respect the total order: %v", err)
	}
	s, ok := c.StrongestImplementable()
	if !ok || s != 0 {
		t.Errorf("strongest implementable (n,x) = %d, %v; want x=0", s, ok)
	}
	w, ok := c.WeakestNonImplementable()
	if !ok || w != 1 {
		t.Errorf("weakest non-implementable (n,x) = %d, %v; want x=1", w, ok)
	}
}

func TestSFreedomSingletonsIncomparable(t *testing.T) {
	// Execution A: the bivalence-style two-stepper livelock. |P|=2 groups
	// fail, |P|=1 groups are vacuous → satisfies S={1}, violates S={2}.
	lock := sim.Run(sim.Config{
		Procs:     2,
		Object:    consensus.NewCommitAdoptOF(2),
		Env:       consensus.ProposeForever(map[int]history.Value{1: 0, 2: 1}),
		Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
		MaxSteps:  400,
	})
	onlyA := liveness.FromResult(lock, 100)

	// Execution B: a solo run of the never-responding implementation: one
	// stepper with no progress → violates S={1}; S={2} vacuous.
	blocked := sim.Run(sim.Config{
		Procs:     2,
		Object:    consensus.Trivial{},
		Env:       consensus.ProposeForever(map[int]history.Value{1: 0, 2: 1}),
		Scheduler: sim.Limit(sim.Solo(1), 100),
		MaxSteps:  100,
	})
	onlyB := liveness.FromResult(blocked, 10)
	// Trivial parks processes after the invocation; the single step the
	// invocation consumed is the "stepper" evidence — widen the window to
	// the whole run so p1 counts as a stepper.
	onlyB.Window = onlyB.Steps

	if err := SFreedomIncomparable(1, 2, nil, onlyA, onlyB); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyNXWitnesses(t *testing.T) {
	b, err := ConsensusBattery(2)
	if err != nil {
		t.Fatal(err)
	}
	c := ClassifyNX(2, nil, []*Battery{b})
	if c.Class[0] != White || c.Witness[0] == "" {
		t.Errorf("x=0 should be white with an implementation witness, got %v %q",
			c.Class[0], c.Witness[0])
	}
	for x := 1; x <= 2; x++ {
		if c.Class[x] != Black || c.Witness[x] == "" {
			t.Errorf("x=%d should be black with a run witness, got %v %q",
				x, c.Class[x], c.Witness[x])
		}
	}
}
