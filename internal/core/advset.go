package core

import (
	"sort"

	"repro/internal/history"
)

// HistorySet is a finitely generated set of histories (the representable
// fragment of the paper's adversary sets and liveness-property
// complements).
type HistorySet struct {
	// Name labels the set in reports.
	Name string

	byKey map[string]history.History
}

// NewHistorySet builds a set from histories (duplicates collapse).
func NewHistorySet(name string, hs ...history.History) *HistorySet {
	s := &HistorySet{Name: name, byKey: make(map[string]history.History, len(hs))}
	for _, h := range hs {
		s.byKey[h.Key()] = h
	}
	return s
}

// Len returns the number of histories.
func (s *HistorySet) Len() int { return len(s.byKey) }

// Contains reports membership.
func (s *HistorySet) Contains(h history.History) bool {
	_, ok := s.byKey[h.Key()]
	return ok
}

// Histories returns the members in a deterministic order.
func (s *HistorySet) Histories() []history.History {
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]history.History, len(keys))
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}

// Intersect returns the intersection of the two sets.
func Intersect(a, b *HistorySet) *HistorySet {
	out := NewHistorySet(a.Name + "∩" + b.Name)
	for k, h := range a.byKey {
		if _, ok := b.byKey[k]; ok {
			out.byKey[k] = h
		}
	}
	return out
}

// Gmax returns the intersection of all the sets (the G_max of Theorem 4.4
// over the given family of adversary sets w.r.t. L_max and S).
func Gmax(sets ...*HistorySet) *HistorySet {
	if len(sets) == 0 {
		return NewHistorySet("Gmax")
	}
	cur := sets[0]
	for _, s := range sets[1:] {
		cur = Intersect(cur, s)
	}
	cur.Name = "Gmax"
	return cur
}

// Empty reports whether the set has no histories. When the family of
// adversary sets has an empty intersection, G_max cannot be an adversary
// set (adversary sets are non-empty by Definition 4.3), so by Theorem 4.4
// there is no weakest liveness property excluding S — the operational core
// of Corollaries 4.5 and 4.6.
func (s *HistorySet) Empty() bool { return len(s.byKey) == 0 }

// PendingCorrectSomewhere reports whether every history in the set leaves
// at least one correct process pending. Read as external histories of
// infinite fair executions with no further external events, such histories
// violate the one-shot L_max (wait-freedom / every correct invocation
// eventually returns) — Definition 4.3's condition (2), F ⊆ complement of
// L_max, on the finite representation.
func (s *HistorySet) PendingCorrectSomewhere() bool {
	for _, h := range s.Histories() {
		found := false
		for _, p := range h.PendingProcs() {
			if h.Correct(p) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
