package core

import (
	"fmt"

	"repro/internal/liveness"
)

// Section 6 of the paper discusses alternative restricted liveness
// families. This file mechanizes the two it analyzes:
//
//   - (n,x)-liveness (Imbs-Raynal-Taubenfeld): x designated processes must
//     be wait-free, the rest obstruction-free. The family is *totally
//     ordered* in x, so unique strongest/weakest answers always exist; for
//     register consensus the strongest implementable is (n,0) and the
//     weakest non-implementable is (n,1).
//   - S-freedom (Taubenfeld): progress for contention-free groups whose
//     size lies in S. The singleton properties are pairwise incomparable,
//     so no strongest implementable S-freedom property exists even though
//     each singleton question is decidable.

// NXClassification classifies (n,x)-liveness for x = 0..N against run
// batteries.
type NXClassification struct {
	// N is the number of processes.
	N int
	// Class[x] is the classification of (n,x)-liveness.
	Class []PointClass
	// Witness[x] names the certifying implementation (white) or violating
	// run (black).
	Witness []string
}

// ClassifyNX evaluates (n,x)-liveness for every x: the first x processes
// are the wait-free set (the family's canonical presentation; symmetric
// batteries make the choice immaterial).
func ClassifyNX(n int, good liveness.Good, batteries []*Battery) *NXClassification {
	out := &NXClassification{
		N:       n,
		Class:   make([]PointClass, n+1),
		Witness: make([]string, n+1),
	}
	for x := 0; x <= n; x++ {
		waitFree := make([]int, 0, x)
		for p := 1; p <= x; p++ {
			waitFree = append(waitFree, p)
		}
		prop := liveness.NXLiveness{WaitFree: waitFree, Good: good}
		out.Class[x] = Black
		var firstViolation string
		for _, b := range batteries {
			viols := b.Violations(prop)
			if len(viols) == 0 {
				out.Class[x] = White
				out.Witness[x] = b.Impl
				break
			}
			if firstViolation == "" {
				firstViolation = fmt.Sprintf("%s/%s", b.Impl, viols[0])
			}
		}
		if out.Class[x] == Black {
			out.Witness[x] = firstViolation
		}
	}
	return out
}

// Monotone verifies the total order: once black, always black for larger
// x ((n,x+1)-liveness is stronger than (n,x)-liveness).
func (c *NXClassification) Monotone() error {
	seenBlack := false
	for x := 0; x <= c.N; x++ {
		if c.Class[x] == Black {
			seenBlack = true
		} else if seenBlack {
			return fmt.Errorf("core: (n,%d) white above a black point", x)
		}
	}
	return nil
}

// StrongestImplementable returns the largest white x; ok=false if none.
func (c *NXClassification) StrongestImplementable() (int, bool) {
	best, ok := -1, false
	for x := 0; x <= c.N; x++ {
		if c.Class[x] == White {
			best, ok = x, true
		}
	}
	return best, ok
}

// WeakestNonImplementable returns the smallest black x; ok=false if none.
func (c *NXClassification) WeakestNonImplementable() (int, bool) {
	for x := 0; x <= c.N; x++ {
		if c.Class[x] == Black {
			return x, true
		}
	}
	return 0, false
}

// NXConsensus classifies (n,x)-liveness for register consensus using the
// standard battery. Per Section 6 the totally ordered family always yields
// unique answers: (n,0) strongest implementable, (n,1) weakest
// non-implementable.
func NXConsensus(n int) (*NXClassification, error) {
	b, err := ConsensusBattery(n)
	if err != nil {
		return nil, err
	}
	return ClassifyNX(2, nil, []*Battery{b}), nil
}

// SFreedomIncomparable demonstrates Section 6's observation that singleton
// S-freedom properties are pairwise incomparable, using two executions:
// one satisfying S={sizeA} but not S={sizeB}, and one the other way
// around. It returns an error if the provided executions do not witness
// the incomparability.
func SFreedomIncomparable(sizeA, sizeB int, good liveness.Good,
	onlyA, onlyB *liveness.Execution) error {
	pa := liveness.SFreedom{Sizes: map[int]bool{sizeA: true}, Good: good}
	pb := liveness.SFreedom{Sizes: map[int]bool{sizeB: true}, Good: good}
	if !pa.Holds(onlyA) || pb.Holds(onlyA) {
		return fmt.Errorf("core: first execution must satisfy %s and violate %s", pa.Name(), pb.Name())
	}
	if pa.Holds(onlyB) || !pb.Holds(onlyB) {
		return fmt.Errorf("core: second execution must violate %s and satisfy %s", pa.Name(), pb.Name())
	}
	return nil
}
