package core

import (
	"fmt"
	"math/bits"
)

// FiniteModel is an abstract instance of the paper's Section 4 setting
// with a finite universe of histories, on which Theorem 4.4 can be
// verified by exhaustive enumeration:
//
//   - the universe is {0, ..., U-1}, each element an abstract well-formed
//     history of S (Definition 4.3's condition F ⊆ S is built in);
//   - Lmax is the strongest liveness property; every liveness property is
//     a superset of Lmax (Definition 3.2);
//   - Impls holds fair(A_I) for every implementation I ensuring S — the
//     quantification domain of Definitions 4.1 and 4.3.
//
// Sets are bitmasks over the universe; U must be at most 20 (2^U subsets
// are enumerated).
type FiniteModel struct {
	U     int
	Lmax  uint32
	Impls []uint32
}

// Validate checks the model's basic sanity.
func (m *FiniteModel) Validate() error {
	if m.U < 1 || m.U > 20 {
		return fmt.Errorf("core: universe size %d out of range [1,20]", m.U)
	}
	all := m.all()
	if m.Lmax&^all != 0 {
		return fmt.Errorf("core: Lmax outside universe")
	}
	for i, f := range m.Impls {
		if f&^all != 0 {
			return fmt.Errorf("core: impl %d fair set outside universe", i)
		}
	}
	return nil
}

func (m *FiniteModel) all() uint32 { return uint32(1)<<uint(m.U) - 1 }

// Excludes reports whether the liveness property L excludes S in the
// model: no implementation ensuring S has fair(A_I) ⊆ L (Definition 4.1).
func (m *FiniteModel) Excludes(l uint32) bool {
	for _, f := range m.Impls {
		if f&^l == 0 {
			return false // this implementation ensures both S and L
		}
	}
	return true
}

// LivenessProperties enumerates every liveness property of the model: all
// supersets of Lmax.
func (m *FiniteModel) LivenessProperties() []uint32 {
	rest := m.all() &^ m.Lmax
	var out []uint32
	// Enumerate subsets of the non-Lmax part and union with Lmax.
	for sub := uint32(0); ; sub = (sub - rest) & rest {
		out = append(out, m.Lmax|sub)
		if sub == rest {
			break
		}
	}
	return out
}

// WeakestExcluding returns the weakest liveness property excluding S
// (Definition 4.2), if it exists: the unique excluding property that every
// excluding property is stronger than (i.e. a subset of).
func (m *FiniteModel) WeakestExcluding() (uint32, bool) {
	var union uint32
	found := false
	for _, l := range m.LivenessProperties() {
		if m.Excludes(l) {
			union |= l
			found = true
		}
	}
	if !found {
		return 0, false
	}
	// The union of all excluding properties is weaker than each of them;
	// the weakest excluding property exists iff the union itself excludes
	// (then it is the maximum of the excluding family).
	if m.Excludes(union) {
		return union, true
	}
	return 0, false
}

// IsAdversarySetWrtLmax checks Definition 4.3 for F against L_max: F
// non-empty, F ⊆ complement(Lmax), and every implementation has a fair
// history in F. (F ⊆ S holds by construction of the universe.)
func (m *FiniteModel) IsAdversarySetWrtLmax(f uint32) bool {
	if f == 0 || f&m.Lmax != 0 {
		return false
	}
	for _, fair := range m.Impls {
		if fair&f == 0 {
			return false
		}
	}
	return true
}

// GmaxSet returns the intersection of all adversary sets w.r.t. L_max, and
// whether at least one adversary set exists.
func (m *FiniteModel) GmaxSet() (uint32, bool) {
	g := m.all()
	any := false
	rest := m.all() &^ m.Lmax
	for sub := uint32(0); ; sub = (sub - rest) & rest {
		if m.IsAdversarySetWrtLmax(sub) {
			g &= sub
			any = true
		}
		if sub == rest {
			break
		}
	}
	if !any {
		return 0, false
	}
	return g, true
}

// Theorem44Report is the outcome of checking Theorem 4.4 on a model.
type Theorem44Report struct {
	// WeakestExists says whether a weakest excluding liveness property
	// exists (left side of the iff).
	WeakestExists bool
	// Weakest is that property when it exists.
	Weakest uint32
	// GmaxIsAdversary says whether G_max is itself an adversary set w.r.t.
	// L_max (right side of the iff).
	GmaxIsAdversary bool
	// Gmax is the intersection of all adversary sets (0 if none exist).
	Gmax uint32
	// Agrees says whether the two sides agree, i.e. the theorem holds on
	// this model.
	Agrees bool
	// WeakestIsGmaxComplement says whether, when both sides hold, the
	// weakest excluding property is exactly the complement of G_max (as
	// the proof of Theorem 4.4 constructs it).
	WeakestIsGmaxComplement bool
}

// CheckTheorem44 verifies both directions of Theorem 4.4 on the model by
// brute force.
func (m *FiniteModel) CheckTheorem44() (*Theorem44Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	r := &Theorem44Report{}
	r.Weakest, r.WeakestExists = m.WeakestExcluding()
	var haveAdv bool
	r.Gmax, haveAdv = m.GmaxSet()
	r.GmaxIsAdversary = haveAdv && m.IsAdversarySetWrtLmax(r.Gmax)
	r.Agrees = r.WeakestExists == r.GmaxIsAdversary
	if r.WeakestExists && r.GmaxIsAdversary {
		r.WeakestIsGmaxComplement = r.Weakest == m.all()&^r.Gmax
	} else {
		r.WeakestIsGmaxComplement = true // vacuous
	}
	return r, nil
}

// PopCount returns the number of histories in the set (exported for
// reporting).
func PopCount(set uint32) int { return bits.OnesCount32(set) }

// ModelWithWeakest is a canonical instance where the weakest excluding
// liveness property exists: a single history (index 1) lies in every
// implementation's fair set outside Lmax, so every adversary set contains
// it and G_max = {1} is itself an adversary set.
func ModelWithWeakest() *FiniteModel {
	return &FiniteModel{
		U:    4,
		Lmax: 1 << 0,
		Impls: []uint32{
			1 << 1,
			1<<1 | 1<<2,
		},
	}
}

// ModelWithoutWeakest mirrors the consensus/TM corollaries: the single
// implementation has two interchangeable bad fair histories (indices 1 and
// 2 — "swap the processes"), giving two disjoint adversary sets {1} and
// {2}; G_max = ∅ is not an adversary set and no weakest excluding property
// exists.
func ModelWithoutWeakest() *FiniteModel {
	return &FiniteModel{
		U:    4,
		Lmax: 1 << 0,
		Impls: []uint32{
			1<<1 | 1<<2 | 1<<3,
		},
	}
}
