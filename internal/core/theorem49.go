package core

import (
	"fmt"
	"strings"

	"repro/internal/automata"
	"repro/internal/history"
	"repro/internal/safety"
)

// LmaxFiniteOneShot interprets a finite history as the external part of an
// infinite fair execution with no further external events and asks whether
// it belongs to the one-shot L_max (wait-freedom): every correct process's
// invocation eventually returns, i.e. no correct process is left pending.
func LmaxFiniteOneShot(h history.History) bool {
	for _, p := range h.PendingProcs() {
		if h.Correct(p) {
			return false
		}
	}
	return true
}

// Theorem49Report is the mechanized content of Theorem 4.9 (and its
// corollaries 4.10/4.11) on the two-process binary-consensus models: for
// any candidate "strongest" liveness property Ls strictly below L_max —
// which by Lemma 4.8 must be L_max ∪ fair(A_Is) for some implementation —
// the trivial implementations I_t and I_b produce liveness properties
// incomparable with it, so only L_max itself could be strongest.
type Theorem49Report struct {
	// ItEnsuresSafety / IbEnsuresSafety: the trivial implementations
	// ensure agreement+validity on every history (up to the checked
	// depth) — the proof's "hence I_t (I_b) ensures S".
	ItEnsuresSafety bool
	IbEnsuresSafety bool
	// Pivot is the history h = propose_1(0)·propose_2(1): fair for I_t,
	// not fair for I_b (ret_1=0 stays enabled), and outside L_max.
	Pivot       history.History
	PivotFairIt bool
	PivotFairIb bool
	PivotInLmax bool
	// Witness is the history propose_1(0)·ret_1=0·propose_1(1)·
	// propose_2(0): fair for I_b, not even a history of I_t, and outside
	// L_max.
	Witness          history.History
	WitnessFairIb    bool
	WitnessHistoryIt bool
	WitnessInLmax    bool
	// Incomparable: L_t = L_max ∪ fair(I_t) and L_b = L_max ∪ fair(I_b)
	// are incomparable, the engine of the proof.
	Incomparable bool
}

// CheckTheorem49 builds the I_t and I_b automata for two processes over
// binary values and verifies the proof's key steps by exhaustive
// enumeration of executions up to depth.
func CheckTheorem49(depth int) (*Theorem49Report, error) {
	values := []int{0, 1}
	it, err := automata.TrivialConsensus(2, values)
	if err != nil {
		return nil, fmt.Errorf("core: building I_t: %w", err)
	}
	ib, err := automata.RespondOnceConsensus(2, 1, 0, 0, values)
	if err != nil {
		return nil, fmt.Errorf("core: building I_b: %w", err)
	}

	r := &Theorem49Report{}
	prop := safety.AgreementValidity{}
	r.ItEnsuresSafety = allTracesSafe(it, depth, prop)
	r.IbEnsuresSafety = allTracesSafe(ib, depth, prop)

	pivotTrace := []string{automata.ActionInvoke(1, 0), automata.ActionInvoke(2, 1)}
	r.Pivot, err = automata.TraceToHistory(pivotTrace)
	if err != nil {
		return nil, err
	}
	r.PivotFairIt = hasFairTrace(it, pivotTrace, depth)
	r.PivotFairIb = hasFairTrace(ib, pivotTrace, depth)
	r.PivotInLmax = LmaxFiniteOneShot(r.Pivot)

	witnessTrace := []string{
		automata.ActionInvoke(1, 0), automata.ActionResponse(1, 0),
		automata.ActionInvoke(1, 1), automata.ActionInvoke(2, 0),
	}
	r.Witness, err = automata.TraceToHistory(witnessTrace)
	if err != nil {
		return nil, err
	}
	r.WitnessFairIb = hasFairTrace(ib, witnessTrace, depth)
	r.WitnessHistoryIt = it.HasTrace(witnessTrace, depth)
	r.WitnessInLmax = LmaxFiniteOneShot(r.Witness)

	// L_t ∌ witness (not even a history of I_t, and outside L_max);
	// L_b ∌ pivot (not fair for I_b, outside L_max). Each contains the
	// other's missing history, so the two liveness properties are
	// incomparable.
	ltHasPivot := r.PivotFairIt || r.PivotInLmax
	ltHasWitness := r.WitnessHistoryIt || r.WitnessInLmax
	lbHasPivot := r.PivotFairIb || r.PivotInLmax
	lbHasWitness := r.WitnessFairIb || r.WitnessInLmax
	r.Incomparable = ltHasPivot && !lbHasPivot && lbHasWitness && !ltHasWitness
	return r, nil
}

// Holds reports whether every proof step checked out.
func (r *Theorem49Report) Holds() bool {
	return r.ItEnsuresSafety && r.IbEnsuresSafety &&
		r.PivotFairIt && !r.PivotFairIb && !r.PivotInLmax &&
		r.WitnessFairIb && !r.WitnessHistoryIt && !r.WitnessInLmax &&
		r.Incomparable
}

// String renders the report.
func (r *Theorem49Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "I_t ensures S: %v; I_b ensures S: %v\n", r.ItEnsuresSafety, r.IbEnsuresSafety)
	fmt.Fprintf(&b, "pivot %s: fair(I_t)=%v fair(I_b)=%v Lmax=%v\n",
		r.Pivot, r.PivotFairIt, r.PivotFairIb, r.PivotInLmax)
	fmt.Fprintf(&b, "witness %s: fair(I_b)=%v history(I_t)=%v Lmax=%v\n",
		r.Witness, r.WitnessFairIb, r.WitnessHistoryIt, r.WitnessInLmax)
	fmt.Fprintf(&b, "L_t and L_b incomparable: %v\n", r.Incomparable)
	return b.String()
}

func allTracesSafe(a *automata.Automaton, depth int, prop safety.Property) bool {
	for _, tr := range a.Traces(depth) {
		h, err := automata.TraceToHistory(tr)
		if err != nil {
			return false
		}
		if !prop.Holds(h) {
			return false
		}
	}
	return true
}

func hasFairTrace(a *automata.Automaton, trace []string, depth int) bool {
	want := strings.Join(trace, "·")
	for _, tr := range a.FairTraces(depth, automata.IsCrashAction) {
		if strings.Join(tr, "·") == want {
			return true
		}
	}
	return false
}
