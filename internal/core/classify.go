package core

import (
	"fmt"

	"repro/internal/liveness"
)

// Battery is a labeled set of bounded fair executions of one
// implementation: the runs against which (l,k)-freedom points are judged.
// A battery should contain the adversarial runs that witness violations
// (bivalence schedules, starvation strategies) as well as benign runs
// (solo after crashes, fair rotation) so that white points carry real
// evidence.
type Battery struct {
	// Impl names the implementation the runs were produced from.
	Impl string
	// Runs are the labeled executions.
	Runs []BatteryRun
}

// BatteryRun is one labeled bounded execution.
type BatteryRun struct {
	// Name describes the schedule/adversary that produced the run.
	Name string
	// Exec is the bounded execution.
	Exec *liveness.Execution
}

// Validate checks that every run in the battery is fair in the windowed
// sense — the precondition for liveness verdicts to mean anything.
func (b *Battery) Validate() error {
	for _, r := range b.Runs {
		if !r.Exec.Fair() {
			return fmt.Errorf("core: battery %s run %s is not fair", b.Impl, r.Name)
		}
	}
	return nil
}

// Violations returns the runs of the battery on which the property fails.
func (b *Battery) Violations(p liveness.Property) []string {
	var out []string
	for _, r := range b.Runs {
		if !p.Holds(r.Exec) {
			out = append(out, r.Name)
		}
	}
	return out
}

// ClassifyPlane classifies every (l,k) point against the batteries: a
// point is white when some battery (implementation) satisfies
// (l,k)-freedom on all of its runs, black otherwise, with witnesses
// recorded either way. good is the object type's good-response set G_Tp.
func ClassifyPlane(n int, safetyName string, good liveness.Good, batteries []*Battery) *PlaneClassification {
	pc := &PlaneClassification{
		N:          n,
		SafetyName: safetyName,
		Points:     make(map[LKPoint]PointInfo),
	}
	for _, pt := range Plane(n) {
		prop := liveness.LK{L: pt.L, K: pt.K, Good: good}
		info := PointInfo{Point: pt, Class: Black}
		var firstViolation string
		for _, b := range batteries {
			viols := b.Violations(prop)
			if len(viols) == 0 {
				info.Class = White
				info.Witness = b.Impl
				break
			}
			if firstViolation == "" {
				firstViolation = fmt.Sprintf("%s/%s", b.Impl, viols[0])
			}
		}
		if info.Class == Black {
			info.Witness = firstViolation
		}
		pc.Points[pt] = info
	}
	return pc
}
