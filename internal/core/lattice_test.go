package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLKPointOrder(t *testing.T) {
	tests := []struct {
		p, q     LKPoint
		stronger bool
	}{
		{LKPoint{1, 2}, LKPoint{1, 1}, true},
		{LKPoint{2, 2}, LKPoint{1, 2}, true},
		{LKPoint{1, 1}, LKPoint{1, 1}, true},
		{LKPoint{1, 3}, LKPoint{2, 2}, false}, // the paper's incomparable pair
		{LKPoint{2, 2}, LKPoint{1, 3}, false},
		{LKPoint{1, 1}, LKPoint{1, 2}, false},
	}
	for _, tt := range tests {
		if got := tt.p.StrongerEq(tt.q); got != tt.stronger {
			t.Errorf("%v.StrongerEq(%v) = %v, want %v", tt.p, tt.q, got, tt.stronger)
		}
	}
	if (LKPoint{1, 3}).Comparable(LKPoint{2, 2}) {
		t.Error("(1,3) and (2,2) must be incomparable")
	}
	if !(LKPoint{1, 2}).Comparable(LKPoint{2, 2}) {
		t.Error("(1,2) and (2,2) are comparable")
	}
}

func TestPlaneEnumeration(t *testing.T) {
	pts := Plane(3)
	// (1,1),(1,2),(2,2),(1,3),(2,3),(3,3)
	if len(pts) != 6 {
		t.Fatalf("Plane(3) has %d points, want 6", len(pts))
	}
	for _, p := range pts {
		if !p.Valid() {
			t.Errorf("invalid point %v", p)
		}
	}
}

func TestQuickOrderLaws(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := LKPoint{int(a%4) + 1, int(a%4) + 1 + int(b%3)}
		q := LKPoint{int(b%4) + 1, int(b%4) + 1 + int(c%3)}
		r := LKPoint{int(c%4) + 1, int(c%4) + 1 + int(a%3)}
		// Reflexivity.
		if !p.StrongerEq(p) {
			return false
		}
		// Antisymmetry.
		if p.StrongerEq(q) && q.StrongerEq(p) && p != q {
			return false
		}
		// Transitivity.
		if p.StrongerEq(q) && q.StrongerEq(r) && !p.StrongerEq(r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMaximalMinimal(t *testing.T) {
	pc := &PlaneClassification{N: 3, Points: make(map[LKPoint]PointInfo)}
	// Whites: (1,1),(1,2); blacks: the rest. Minimal blacks should be
	// (1,3) and (2,2) — the Section 5.3 situation.
	for _, p := range Plane(3) {
		cls := Black
		if p == (LKPoint{1, 1}) || p == (LKPoint{1, 2}) {
			cls = White
		}
		pc.Points[p] = PointInfo{Point: p, Class: cls}
	}
	if err := pc.Monotone(); err != nil {
		t.Fatalf("classification should be monotone: %v", err)
	}
	mw := pc.MaximalWhites()
	if len(mw) != 1 || mw[0] != (LKPoint{1, 2}) {
		t.Errorf("MaximalWhites = %v, want [(1,2)]", mw)
	}
	mb := pc.MinimalBlacks()
	if len(mb) != 2 || mb[0] != (LKPoint{2, 2}) || mb[1] != (LKPoint{1, 3}) {
		t.Errorf("MinimalBlacks = %v, want [(2,2) (1,3)]", mb)
	}
	if _, ok := pc.WeakestNonImplementable(); ok {
		t.Error("two minimal blacks: no unique weakest")
	}
	if s, ok := pc.StrongestImplementable(); !ok || s != (LKPoint{1, 2}) {
		t.Errorf("StrongestImplementable = %v, %v", s, ok)
	}
}

func TestMonotoneDetectsInconsistency(t *testing.T) {
	pc := &PlaneClassification{N: 2, Points: make(map[LKPoint]PointInfo)}
	pc.Points[LKPoint{1, 1}] = PointInfo{Class: Black}
	pc.Points[LKPoint{1, 2}] = PointInfo{Class: White}
	pc.Points[LKPoint{2, 2}] = PointInfo{Class: White}
	if err := pc.Monotone(); err == nil {
		t.Error("white above black must be flagged")
	}
}

func TestRender(t *testing.T) {
	pc := &PlaneClassification{N: 2, SafetyName: "test", Points: map[LKPoint]PointInfo{
		{1, 1}: {Class: White},
		{1, 2}: {Class: Black},
		{2, 2}: {Class: Black},
	}}
	out := pc.Render()
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") || !strings.Contains(out, ".") {
		t.Errorf("render missing symbols:\n%s", out)
	}
}
