package automata

import (
	"fmt"
	"strings"
	"testing"
)

func TestCopySystemComposition(t *testing.T) {
	sys, err := CopySystem()
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// The base-object communication must be internal after composition.
	for _, act := range []string{
		ActDoRead(1, "r"), ActDoWrite(1, "r", 0), ActVal(1, "r", 0), ActAck(1, "r"),
	} {
		if !sys.Internals[act] {
			t.Errorf("action %q must be internal in A_I x A_B", act)
		}
	}
	// Only the object-level actions stay external.
	if !sys.Inputs["copy_1(0)"] || !sys.Outputs[ActionResponse(1, 0)] {
		t.Error("object-level invocation/response must stay external")
	}
}

func TestCopySystemBehavior(t *testing.T) {
	sys, err := CopySystem()
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	// The copy algorithm writes v, reads it back and returns it: the only
	// completed external traces are copy_1(v)·ret_1=v.
	for _, v := range []int{0, 1} {
		want := []string{
			fmt.Sprintf("copy_1(%d)", v),
			ActionResponse(1, v),
		}
		if !sys.HasTrace(want, 8) {
			t.Errorf("trace %v must exist", want)
		}
		wrong := []string{fmt.Sprintf("copy_1(%d)", v), ActionResponse(1, 1-v)}
		if sys.HasTrace(wrong, 8) {
			t.Errorf("trace %v must not exist (register faithfulness)", wrong)
		}
	}
	// A completed run is fair (only the crash stays enabled); an
	// incomplete one is not (internal steps remain enabled).
	completed := []string{"copy_1(1)", ActionResponse(1, 1)}
	foundFair := false
	for _, tr := range sys.FairTraces(8, IsCrashAction) {
		joined := strings.Join(tr, "·")
		if joined == strings.Join(completed, "·") {
			foundFair = true
		}
		if joined == "copy_1(1)" {
			t.Error("an incomplete execution must not be fair: internal steps pending")
		}
	}
	if !foundFair {
		t.Error("the completed run must be fair")
	}
}
