package automata

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/history"
)

// Action-name helpers for the consensus models used by the Theorem 4.9
// constructions. Invocations are "propose_<p>(<v>)", responses are
// "ret_<p>=<v>", crashes are "crash_<p>".

// ActionInvoke names the propose invocation of process p with value v.
func ActionInvoke(p, v int) string { return fmt.Sprintf("propose_%d(%d)", p, v) }

// ActionResponse names the decision response of process p with value v.
func ActionResponse(p, v int) string { return fmt.Sprintf("ret_%d=%d", p, v) }

// ActionCrash names the crash input of process p.
func ActionCrash(p int) string { return fmt.Sprintf("crash_%d", p) }

// IsCrashAction reports whether the action is a crash input.
func IsCrashAction(a string) bool { return strings.HasPrefix(a, "crash_") }

// TraceToHistory converts a trace in the naming convention above into a
// history.
func TraceToHistory(tr []string) (history.History, error) {
	var h history.History
	for _, act := range tr {
		switch {
		case strings.HasPrefix(act, "propose_"):
			rest := strings.TrimPrefix(act, "propose_")
			open := strings.IndexByte(rest, '(')
			if open < 0 || !strings.HasSuffix(rest, ")") {
				return nil, fmt.Errorf("automata: bad invoke action %q", act)
			}
			p, err := strconv.Atoi(rest[:open])
			if err != nil {
				return nil, fmt.Errorf("automata: bad process in %q: %w", act, err)
			}
			v, err := strconv.Atoi(rest[open+1 : len(rest)-1])
			if err != nil {
				return nil, fmt.Errorf("automata: bad value in %q: %w", act, err)
			}
			h = append(h, history.Invoke(p, "propose", v))
		case strings.HasPrefix(act, "ret_"):
			rest := strings.TrimPrefix(act, "ret_")
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return nil, fmt.Errorf("automata: bad response action %q", act)
			}
			p, err := strconv.Atoi(rest[:eq])
			if err != nil {
				return nil, fmt.Errorf("automata: bad process in %q: %w", act, err)
			}
			v, err := strconv.Atoi(rest[eq+1:])
			if err != nil {
				return nil, fmt.Errorf("automata: bad value in %q: %w", act, err)
			}
			h = append(h, history.Response(p, "propose", v))
		case strings.HasPrefix(act, "crash_"):
			p, err := strconv.Atoi(strings.TrimPrefix(act, "crash_"))
			if err != nil {
				return nil, fmt.Errorf("automata: bad crash action %q: %w", act, err)
			}
			h = append(h, history.Crash(p))
		default:
			return nil, fmt.Errorf("automata: unknown action %q", act)
		}
	}
	return h, nil
}

// ProcTrivial builds A_{It,i}: process i of the trivial implementation I_t
// from the proof of Theorem 4.9 — it accepts one invocation and then
// enables nothing (no response, ever). values is the proposal alphabet.
func ProcTrivial(i int, values []int) *Automaton {
	a := New(fmt.Sprintf("It%d", i), "idle")
	a.AddInput(ActionCrash(i))
	for _, v := range values {
		a.AddInput(ActionInvoke(i, v))
		a.AddOutput(ActionResponse(i, v)) // declared, never enabled
		a.AddEdge("idle", ActionInvoke(i, v), "dead")
	}
	a.AddEdge("idle", ActionCrash(i), "crashed")
	a.AddEdge("dead", ActionCrash(i), "crashed")
	return a
}

// ProcRespondOnce builds A_{Ib,i}: process i of the implementation I_b from
// the proof of Theorem 4.9. For the distinguished process l with the
// distinguished invocation propose_l(arg):
//
//   - the first propose_l(arg) moves to a state where only the response
//     ret_l=resp (and crash) is enabled — so a history that leaves it
//     pending is NOT fair;
//   - after the response, every invocation is enabled once more, and any
//     second invocation dead-ends;
//   - any other first invocation dead-ends;
//   - every other process dead-ends on any invocation.
func ProcRespondOnce(i, l, arg, resp int, values []int) *Automaton {
	a := New(fmt.Sprintf("Ib%d", i), "s0")
	a.AddInput(ActionCrash(i))
	for _, v := range values {
		a.AddInput(ActionInvoke(i, v))
		a.AddOutput(ActionResponse(i, v))
	}
	if i != l {
		for _, v := range values {
			a.AddEdge("s0", ActionInvoke(i, v), "s1")
		}
		a.AddEdge("s0", ActionCrash(i), "crashed")
		a.AddEdge("s1", ActionCrash(i), "crashed")
		return a
	}
	for _, v := range values {
		if v == arg {
			a.AddEdge("s0", ActionInvoke(i, v), "sl")
		} else {
			a.AddEdge("s0", ActionInvoke(i, v), "sl2")
		}
		a.AddEdge("slen", ActionInvoke(i, v), "sl1")
	}
	a.AddEdge("sl", ActionResponse(i, resp), "slen")
	for _, st := range []string{"s0", "sl", "slen", "sl1", "sl2"} {
		a.AddEdge(st, ActionCrash(i), "crashed")
	}
	return a
}

// TrivialConsensus composes I_t for n processes over the value alphabet.
func TrivialConsensus(n int, values []int) (*Automaton, error) {
	procs := make([]*Automaton, n)
	for i := 1; i <= n; i++ {
		procs[i-1] = ProcTrivial(i, values)
	}
	return ComposeAll(procs...)
}

// RespondOnceConsensus composes I_b for n processes: process l responds
// resp to its first propose_l(arg); everything else blocks.
func RespondOnceConsensus(n, l, arg, resp int, values []int) (*Automaton, error) {
	procs := make([]*Automaton, n)
	for i := 1; i <= n; i++ {
		procs[i-1] = ProcRespondOnce(i, l, arg, resp, values)
	}
	return ComposeAll(procs...)
}

// InputEnabledForInvocations checks the paper's input-enabledness on the
// composed automaton: at every reachable state whose generating history
// leaves process p non-pending and non-crashed, every invocation of p is
// enabled. It explores executions up to maxLen actions.
func InputEnabledForInvocations(a *Automaton, n int, values []int, maxLen int) error {
	for _, e := range a.Executions(maxLen) {
		h, err := TraceToHistory(e.Trace(a))
		if err != nil {
			return err
		}
		enabled := make(map[string]bool)
		for _, act := range a.Enabled(e.Final()) {
			enabled[act] = true
		}
		for p := 1; p <= n; p++ {
			if h.Pending(p) || h.Crashed(p) {
				continue
			}
			for _, v := range values {
				if !enabled[ActionInvoke(p, v)] {
					return fmt.Errorf("automata: %s not enabled after %s", ActionInvoke(p, v), e)
				}
			}
		}
	}
	return nil
}
