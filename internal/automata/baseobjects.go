package automata

import "fmt"

// Section 2 models an implementation as the composition A_I1 × ... × A_In
// × A_B, where A_B is the base-object automaton. This file provides
// explicit finite automata for a boolean register and for a trivial
// process algorithm that uses it, so the paper's full composition —
// process automata communicating with a base-object automaton through
// actions that become internal — can be built and inspected end to end.

// Base-object action names: processes issue "doread_i(r)" / "dowrite_i(r,v)"
// (outputs of the process automaton, inputs of the register automaton) and
// the register answers "val_i(r,v)" / "ack_i(r)".

// ActDoRead names process i's read request on register r.
func ActDoRead(i int, r string) string { return fmt.Sprintf("doread_%d(%s)", i, r) }

// ActDoWrite names process i's write request of bit v to register r.
func ActDoWrite(i int, r string, v int) string {
	return fmt.Sprintf("dowrite_%d(%s,%d)", i, r, v)
}

// ActVal names the register's value response to process i.
func ActVal(i int, r string, v int) string { return fmt.Sprintf("val_%d(%s,%d)", i, r, v) }

// ActAck names the register's write acknowledgment to process i.
func ActAck(i int, r string) string { return fmt.Sprintf("ack_%d(%s)", i, r) }

// BitRegisterAutomaton builds A_B for a single boolean register named r
// serving processes 1..n: state tracks the stored bit and the pending
// request; read/write requests are inputs, responses outputs. One request
// is served at a time per the paper's sequential-process assumption.
func BitRegisterAutomaton(r string, n int) *Automaton {
	a := New("reg:"+r, "v0")
	for v := 0; v <= 1; v++ {
		for i := 1; i <= n; i++ {
			a.AddInput(ActDoRead(i, r))
			a.AddInput(ActDoWrite(i, r, v))
			a.AddOutput(ActVal(i, r, v))
			a.AddOutput(ActAck(i, r))
		}
	}
	// States: "v<bit>" idle, "v<bit>;read<i>" serving a read,
	// "v<bit>;wrote<i>" serving a write ack.
	for v := 0; v <= 1; v++ {
		idle := fmt.Sprintf("v%d", v)
		for i := 1; i <= n; i++ {
			reading := fmt.Sprintf("v%d;read%d", v, i)
			a.AddEdge(idle, ActDoRead(i, r), reading)
			a.AddEdge(reading, ActVal(i, r, v), idle)
			for w := 0; w <= 1; w++ {
				acking := fmt.Sprintf("v%d;wrote%d", w, i)
				a.AddEdge(idle, ActDoWrite(i, r, w), acking)
			}
			a.AddEdge(fmt.Sprintf("v%d;wrote%d", v, i), ActAck(i, r), idle)
		}
	}
	return a
}

// CopyBitProcess builds A_Ii for a one-shot "copy" algorithm of process i:
// on invocation copy_i(v) it writes v to register r, reads it back, and
// returns the read bit. External actions are copy_i(v) (input) and
// ret_i=<bit> (output); the register interactions are outputs/inputs that
// the composition with BitRegisterAutomaton hides.
func CopyBitProcess(i int, r string) *Automaton {
	a := New(fmt.Sprintf("copy%d", i), "idle")
	a.AddInput(ActionCrash(i))
	for v := 0; v <= 1; v++ {
		a.AddInput(fmt.Sprintf("copy_%d(%d)", i, v))
		a.AddOutput(ActionResponse(i, v))
		a.AddOutput(ActDoWrite(i, r, v))
		a.AddInput(ActVal(i, r, v))
	}
	a.AddOutput(ActDoRead(i, r))
	a.AddInput(ActAck(i, r))

	for v := 0; v <= 1; v++ {
		a.AddEdge("idle", fmt.Sprintf("copy_%d(%d)", i, v), fmt.Sprintf("want%d", v))
		a.AddEdge(fmt.Sprintf("want%d", v), ActDoWrite(i, r, v), "awaitAck")
		a.AddEdge("awaitAck", ActAck(i, r), "doRead")
		a.AddEdge("doRead", ActDoRead(i, r), "awaitVal")
		a.AddEdge("awaitVal", ActVal(i, r, v), fmt.Sprintf("got%d", v))
		a.AddEdge(fmt.Sprintf("got%d", v), ActionResponse(i, v), "done")
	}
	for _, st := range []string{"idle", "awaitAck", "doRead", "awaitVal", "done", "want0", "want1", "got0", "got1"} {
		a.AddEdge(st, ActionCrash(i), "crashed")
	}
	return a
}

// CopySystem composes A_I1 × A_B per Section 2 for one process and one
// register: the base-object communication becomes internal and only
// copy_1(v), ret_1=v and crash_1 stay external.
func CopySystem() (*Automaton, error) {
	return Compose(CopyBitProcess(1, "r"), BitRegisterAutomaton("r", 1))
}
