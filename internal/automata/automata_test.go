package automata

import (
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/safety"
)

func TestValidate(t *testing.T) {
	a := New("a", "s0").AddInput("x").AddOutput("y")
	a.AddEdge("s0", "x", "s1").AddEdge("s1", "y", "s0")
	if err := a.Validate(); err != nil {
		t.Fatalf("valid automaton rejected: %v", err)
	}
	bad := New("b", "s0").AddInput("x").AddOutput("x")
	if err := bad.Validate(); err == nil {
		t.Fatal("action in two classes must be rejected")
	}
	undeclared := New("c", "s0")
	undeclared.AddEdge("s0", "z", "s1")
	if err := undeclared.Validate(); err == nil {
		t.Fatal("undeclared transition action must be rejected")
	}
}

func TestEnabledAndNext(t *testing.T) {
	a := New("a", "s0").AddInput("x", "y")
	a.AddEdge("s0", "x", "s1").AddEdge("s0", "y", "s2").AddEdge("s0", "x", "s3")
	en := a.Enabled("s0")
	if len(en) != 2 || en[0] != "x" || en[1] != "y" {
		t.Errorf("Enabled = %v", en)
	}
	if nx := a.Next("s0", "x"); len(nx) != 2 {
		t.Errorf("Next(x) = %v, want both nondeterministic targets", nx)
	}
	if nx := a.Next("s1", "x"); len(nx) != 0 {
		t.Errorf("Next at sink = %v", nx)
	}
}

func TestComposeCommunicationBecomesInternal(t *testing.T) {
	// a outputs "m"; b takes "m" as input: in the composition "m" is
	// internal (the paper's simplified composition).
	a := New("a", "s0").AddOutput("m")
	a.AddEdge("s0", "m", "s1")
	b := New("b", "t0").AddInput("m").AddOutput("done")
	b.AddEdge("t0", "m", "t1").AddEdge("t1", "done", "t2")
	c, err := Compose(a, b)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if !c.Internals["m"] {
		t.Error("communication action must become internal")
	}
	if !c.Outputs["done"] {
		t.Error("non-communication output stays external")
	}
	// The composed run s0|t0 -m-> s1|t1 -done-> s1|t2 exists; its trace
	// hides m.
	traces := c.Traces(2)
	found := false
	for _, tr := range traces {
		if strings.Join(tr, "·") == "done" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected externally visible trace [done], got %v", traces)
	}
}

func TestComposeIncompatible(t *testing.T) {
	a := New("a", "s0").AddOutput("m")
	b := New("b", "t0").AddOutput("m")
	if _, err := Compose(a, b); err == nil {
		t.Fatal("shared outputs must be incompatible")
	}
	c := New("c", "u0").AddInternal("i")
	d := New("d", "v0").AddInput("i")
	if _, err := Compose(c, d); err == nil {
		t.Fatal("internal action of one appearing in the other must be incompatible")
	}
}

func TestComposeInterleavesIndependent(t *testing.T) {
	a := New("a", "s0").AddInput("x")
	a.AddEdge("s0", "x", "s1")
	b := New("b", "t0").AddInput("y")
	b.AddEdge("t0", "y", "t1")
	c, err := Compose(a, b)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if !c.HasTrace([]string{"x", "y"}, 2) || !c.HasTrace([]string{"y", "x"}, 2) {
		t.Error("independent actions must interleave both ways")
	}
}

func TestExecutionsAndFairness(t *testing.T) {
	// s0 -x-> s1 (only crash enabled at s1).
	a := New("a", "s0").AddInput("x", "crash_1").AddOutput("r")
	a.AddEdge("s0", "x", "s1")
	a.AddEdge("s1", "crash_1", "dead")
	execs := a.Executions(2)
	// empty, x, x·crash
	if len(execs) != 3 {
		t.Fatalf("got %d executions, want 3", len(execs))
	}
	// The empty execution is not fair (x enabled at s0); [x] is fair (only
	// crash at s1).
	var empty, justX *Execution
	for _, e := range execs {
		switch len(e.Actions) {
		case 0:
			empty = e
		case 1:
			justX = e
		}
	}
	if a.FairFinite(empty, IsCrashAction) {
		t.Error("empty execution is not fair: x is enabled")
	}
	if !a.FairFinite(justX, IsCrashAction) {
		t.Error("[x] is fair: only crash remains")
	}
}

func TestTraceToHistory(t *testing.T) {
	h, err := TraceToHistory([]string{"propose_1(0)", "ret_1=0", "crash_2"})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := history.History{
		history.Invoke(1, "propose", 0),
		history.Response(1, "propose", 0),
		history.Crash(2),
	}
	if !h.Equal(want) {
		t.Errorf("got %s, want %s", h, want)
	}
	if _, err := TraceToHistory([]string{"garbage"}); err == nil {
		t.Error("unknown action must fail")
	}
}

func TestTrivialConsensusModel(t *testing.T) {
	it, err := TrivialConsensus(2, []int{0, 1})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if err := it.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Every trace is invocation-and-crash only, and satisfies
	// agreement+validity (vacuously): I_t ensures S.
	for _, tr := range it.Traces(4) {
		h, err := TraceToHistory(tr)
		if err != nil {
			t.Fatalf("parse %v: %v", tr, err)
		}
		for _, e := range h {
			if e.Kind == history.KindResponse {
				t.Fatalf("I_t produced a response: %v", tr)
			}
		}
		if !(safety.AgreementValidity{}).Holds(h) {
			t.Fatalf("I_t history violates safety: %s", h)
		}
	}
	// propose_1(0)·propose_2(1) IS a fair trace of I_t: both processes are
	// pending, so nothing but crashes is enabled. propose_1(0) alone is
	// not fair — p2's invocations are still enabled (the paper's fairness
	// counts input actions).
	fair := it.FairTraces(2, IsCrashAction)
	foundPair, foundSolo := false, false
	for _, tr := range fair {
		if len(tr) == 2 && tr[0] == ActionInvoke(1, 0) && tr[1] == ActionInvoke(2, 1) {
			foundPair = true
		}
		if len(tr) == 1 && tr[0] == ActionInvoke(1, 0) {
			foundSolo = true
		}
	}
	if !foundPair {
		t.Error("propose_1(0)·propose_2(1) must be a fair trace of I_t")
	}
	if foundSolo {
		t.Error("propose_1(0) alone is not fair: p2 can still invoke")
	}
	// Input-enabledness in the paper's sense.
	if err := InputEnabledForInvocations(it, 2, []int{0, 1}, 3); err != nil {
		t.Errorf("I_t must be input-enabled: %v", err)
	}
}

func TestRespondOnceConsensusModel(t *testing.T) {
	ib, err := RespondOnceConsensus(2, 1, 0, 0, []int{0, 1})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if err := ib.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Every history of I_b is safe: the only response is ret_1=0 to
	// propose_1(0).
	for _, tr := range ib.Traces(5) {
		h, err := TraceToHistory(tr)
		if err != nil {
			t.Fatalf("parse %v: %v", tr, err)
		}
		if !(safety.AgreementValidity{}).Holds(h) {
			t.Fatalf("I_b history violates safety: %s", h)
		}
	}
	// The proof's pivot: h = propose_1(0)·propose_2(1) is a fair trace of
	// I_t (everyone pending) but NOT of I_b, where ret_1=0 stays enabled.
	pivot := []string{ActionInvoke(1, 0), ActionInvoke(2, 1)}
	for _, tr := range ib.FairTraces(3, IsCrashAction) {
		if strings.Join(tr, "·") == strings.Join(pivot, "·") {
			t.Fatal("the pivot history must not be fair for I_b: ret_1=0 is enabled")
		}
	}
	// Conversely propose_1(0)·ret_1=0·propose_1(1)·propose_2(0) IS fair
	// for I_b (p1 dead-ended, p2 pending) and is not even a trace of I_t.
	target := []string{
		ActionInvoke(1, 0), ActionResponse(1, 0),
		ActionInvoke(1, 1), ActionInvoke(2, 0),
	}
	foundFair := false
	for _, tr := range ib.FairTraces(4, IsCrashAction) {
		if strings.Join(tr, "·") == strings.Join(target, "·") {
			foundFair = true
		}
	}
	if !foundFair {
		t.Error("propose_1(0)·ret_1=0·propose_1(1)·propose_2(0) must be a fair trace of I_b")
	}
	it, err := TrivialConsensus(2, []int{0, 1})
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	if it.HasTrace(target, 5) {
		t.Error("I_t cannot produce the response-bearing trace")
	}
}

func TestReachable(t *testing.T) {
	a := New("a", "s0").AddInput("x")
	a.AddEdge("s0", "x", "s1").AddEdge("s1", "x", "s0")
	a.AddEdge("unreachable", "x", "s0")
	r := a.Reachable()
	if len(r) != 2 {
		t.Errorf("Reachable = %v", r)
	}
}
