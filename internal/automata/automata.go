// Package automata implements the I/O automata model of Section 2: action
// signatures partitioned into input, output and internal actions, the
// paper's simplified composition (communication actions between components
// become internal), executions, and the fairness notion used to define
// fair(A_I).
//
// The package works with explicit finite automata over string states and
// actions. It is the substrate for the Theorem 4.9 constructions (the
// trivial implementations I_t and I_b), where the proof's key steps — "this
// history is fair for I_t but no execution of I_b with this history is
// fair" — are checked by exhaustive enumeration.
package automata

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is one transition: on Action, move to state To.
type Edge struct {
	Action string
	To     string
}

// Automaton is a finite I/O automaton. The state set is implicit (every
// state mentioned in Init or Trans). Actions must be consistently
// classified: an action may appear in only one of Inputs/Outputs/Internals.
type Automaton struct {
	// Name identifies the automaton (used in composed state names).
	Name string
	// Init is the initial state.
	Init string
	// Inputs, Outputs, Internals classify the action signature.
	Inputs, Outputs, Internals map[string]bool
	// Trans maps each state to its outgoing edges. Nondeterminism is
	// allowed (several edges with the same action).
	Trans map[string][]Edge
}

// New creates an empty automaton with the given name and initial state.
func New(name, init string) *Automaton {
	return &Automaton{
		Name:      name,
		Init:      init,
		Inputs:    make(map[string]bool),
		Outputs:   make(map[string]bool),
		Internals: make(map[string]bool),
		Trans:     make(map[string][]Edge),
	}
}

// AddInput declares input actions.
func (a *Automaton) AddInput(actions ...string) *Automaton {
	for _, act := range actions {
		a.Inputs[act] = true
	}
	return a
}

// AddOutput declares output actions.
func (a *Automaton) AddOutput(actions ...string) *Automaton {
	for _, act := range actions {
		a.Outputs[act] = true
	}
	return a
}

// AddInternal declares internal actions.
func (a *Automaton) AddInternal(actions ...string) *Automaton {
	for _, act := range actions {
		a.Internals[act] = true
	}
	return a
}

// AddEdge adds a transition from → (action) → to.
func (a *Automaton) AddEdge(from, action, to string) *Automaton {
	a.Trans[from] = append(a.Trans[from], Edge{Action: action, To: to})
	return a
}

// Actions returns the full action set acts(A).
func (a *Automaton) Actions() map[string]bool {
	out := make(map[string]bool)
	for s := range a.Inputs {
		out[s] = true
	}
	for s := range a.Outputs {
		out[s] = true
	}
	for s := range a.Internals {
		out[s] = true
	}
	return out
}

// External reports whether the action is externally visible (input or
// output).
func (a *Automaton) External(action string) bool {
	return a.Inputs[action] || a.Outputs[action]
}

// Enabled returns the actions enabled at the state, sorted.
func (a *Automaton) Enabled(state string) []string {
	seen := make(map[string]bool)
	for _, e := range a.Trans[state] {
		seen[e.Action] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Next returns the successor states of state under action.
func (a *Automaton) Next(state, action string) []string {
	var out []string
	for _, e := range a.Trans[state] {
		if e.Action == action {
			out = append(out, e.To)
		}
	}
	return out
}

// Validate checks signature consistency: actions belong to exactly one
// class and every transition's action is declared.
func (a *Automaton) Validate() error {
	for s := range a.Inputs {
		if a.Outputs[s] || a.Internals[s] {
			return fmt.Errorf("automata: action %q in several classes", s)
		}
	}
	for s := range a.Outputs {
		if a.Internals[s] {
			return fmt.Errorf("automata: action %q in several classes", s)
		}
	}
	acts := a.Actions()
	for from, edges := range a.Trans {
		for _, e := range edges {
			if !acts[e.Action] {
				return fmt.Errorf("automata: transition %s-%s->%s uses undeclared action", from, e.Action, e.To)
			}
		}
	}
	return nil
}

// Compatible reports whether a and b may be composed: disjoint outputs and
// no internal action of one appearing in the other.
func Compatible(a, b *Automaton) bool {
	for s := range a.Outputs {
		if b.Outputs[s] {
			return false
		}
	}
	actsB := b.Actions()
	for s := range a.Internals {
		if actsB[s] {
			return false
		}
	}
	actsA := a.Actions()
	for s := range b.Internals {
		if actsA[s] {
			return false
		}
	}
	return true
}

// Compose builds the composition A = a × b with the paper's simplified
// signature: communication actions (in(a)∩out(b) and in(b)∩out(a)) become
// internal. Composed states are "sa|sb". Only states reachable from the
// initial pair are materialized.
func Compose(a, b *Automaton) (*Automaton, error) {
	if !Compatible(a, b) {
		return nil, fmt.Errorf("automata: %s and %s are not compatible", a.Name, b.Name)
	}
	c := New(a.Name+"x"+b.Name, join(a.Init, b.Init))
	for s := range a.Internals {
		c.Internals[s] = true
	}
	for s := range b.Internals {
		c.Internals[s] = true
	}
	for s := range a.Inputs {
		if b.Outputs[s] {
			c.Internals[s] = true
		}
	}
	for s := range b.Inputs {
		if a.Outputs[s] {
			c.Internals[s] = true
		}
	}
	for s := range a.Inputs {
		if !c.Internals[s] {
			c.Inputs[s] = true
		}
	}
	for s := range b.Inputs {
		if !c.Internals[s] {
			c.Inputs[s] = true
		}
	}
	for s := range a.Outputs {
		if !c.Internals[s] {
			c.Outputs[s] = true
		}
	}
	for s := range b.Outputs {
		if !c.Internals[s] {
			c.Outputs[s] = true
		}
	}

	actsA, actsB := a.Actions(), b.Actions()
	type pair struct{ sa, sb string }
	start := pair{a.Init, b.Init}
	seen := map[pair]bool{start: true}
	queue := []pair{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		from := join(cur.sa, cur.sb)
		for act := range c.Actions() {
			inA, inB := actsA[act], actsB[act]
			var nextA, nextB []string
			if inA {
				nextA = a.Next(cur.sa, act)
				if len(nextA) == 0 {
					continue // a participates but is not enabled
				}
			} else {
				nextA = []string{cur.sa}
			}
			if inB {
				nextB = b.Next(cur.sb, act)
				if len(nextB) == 0 {
					continue
				}
			} else {
				nextB = []string{cur.sb}
			}
			for _, na := range nextA {
				for _, nb := range nextB {
					c.AddEdge(from, act, join(na, nb))
					np := pair{na, nb}
					if !seen[np] {
						seen[np] = true
						queue = append(queue, np)
					}
				}
			}
		}
	}
	return c, nil
}

// ComposeAll folds Compose over several automata left to right.
func ComposeAll(as ...*Automaton) (*Automaton, error) {
	if len(as) == 0 {
		return nil, fmt.Errorf("automata: nothing to compose")
	}
	cur := as[0]
	for _, next := range as[1:] {
		c, err := Compose(cur, next)
		if err != nil {
			return nil, err
		}
		cur = c
	}
	return cur, nil
}

func join(a, b string) string { return a + "|" + b }

// Execution is an alternating state/action sequence, represented by the
// action sequence and the visited states (len(States) = len(Actions)+1).
type Execution struct {
	Actions []string
	States  []string
}

// Final returns the last state.
func (e *Execution) Final() string { return e.States[len(e.States)-1] }

// Trace returns the external actions of the execution (its history, as a
// sequence of action names).
func (e *Execution) Trace(a *Automaton) []string {
	var out []string
	for _, act := range e.Actions {
		if a.External(act) {
			out = append(out, act)
		}
	}
	return out
}

// String renders the action sequence.
func (e *Execution) String() string { return strings.Join(e.Actions, "·") }

// Executions enumerates every execution of a with at most maxLen actions
// (including the empty one), depth-first.
func (a *Automaton) Executions(maxLen int) []*Execution {
	var out []*Execution
	var rec func(states []string, actions []string)
	rec = func(states, actions []string) {
		out = append(out, &Execution{
			Actions: append([]string(nil), actions...),
			States:  append([]string(nil), states...),
		})
		if len(actions) == maxLen {
			return
		}
		cur := states[len(states)-1]
		for _, e := range a.Trans[cur] {
			rec(append(states, e.To), append(actions, e.Action))
		}
	}
	rec([]string{a.Init}, nil)
	return out
}

// FairFinite reports whether the finite execution is fair: no action other
// than crash actions is enabled at its final state (clause (I) of the
// paper's fairness definition). isCrash identifies crash actions.
func (a *Automaton) FairFinite(e *Execution, isCrash func(action string) bool) bool {
	for _, act := range a.Enabled(e.Final()) {
		if !isCrash(act) {
			return false
		}
	}
	return true
}

// FairTraces enumerates the traces (external action sequences) of the fair
// finite executions of at most maxLen actions. Traces are deduplicated.
func (a *Automaton) FairTraces(maxLen int, isCrash func(string) bool) [][]string {
	seen := make(map[string]bool)
	var out [][]string
	for _, e := range a.Executions(maxLen) {
		if !a.FairFinite(e, isCrash) {
			continue
		}
		tr := e.Trace(a)
		key := strings.Join(tr, "·")
		if !seen[key] {
			seen[key] = true
			out = append(out, tr)
		}
	}
	return out
}

// Traces enumerates all traces of executions up to maxLen actions
// (deduplicated) — the finite histories of the automaton, fair or not.
func (a *Automaton) Traces(maxLen int) [][]string {
	seen := make(map[string]bool)
	var out [][]string
	for _, e := range a.Executions(maxLen) {
		tr := e.Trace(a)
		key := strings.Join(tr, "·")
		if !seen[key] {
			seen[key] = true
			out = append(out, tr)
		}
	}
	return out
}

// HasTrace reports whether some execution of at most maxLen actions has
// exactly the given trace.
func (a *Automaton) HasTrace(trace []string, maxLen int) bool {
	want := strings.Join(trace, "·")
	for _, tr := range a.Traces(maxLen) {
		if strings.Join(tr, "·") == want {
			return true
		}
	}
	return false
}

// Reachable returns all states reachable from Init.
func (a *Automaton) Reachable() []string {
	seen := map[string]bool{a.Init: true}
	queue := []string{a.Init}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range a.Trans[cur] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
