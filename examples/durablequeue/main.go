// Durablequeue: a seeded recovery bug only crash+recover can reach. A
// persistent queue journals every enqueue in a per-process redo log
// (write intent, flush, apply, clear, flush the clear) — but its
// recovery routine rolls the log forward UNCONDITIONALLY, without
// checking whether the crashed enqueue already took effect. A crash
// between the apply and the final log clear therefore makes recovery
// enqueue the element a second time.
//
// The protocol is correct in every crash-free execution (the apply is a
// single atomic window), and correct under crashes alone (a crashed
// process never runs again, so its durable log is never replayed):
// exhaustive exploration is provably clean both without crashes and
// with WithCrashes(1) — the duplicate needs WithRecoveries(1) on top,
// where strict linearizability (crash-aware: a crashed operation
// linearizes at most once or vanishes) flags the twice-delivered
// element. Contrast internal/queue.Persistent, whose recovery guards
// the redo with the intent's pre-state and is clean under recovery.
package main

import (
	"fmt"
	"os"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
)

func main() {
	if err := play(); err != nil {
		fmt.Fprintln(os.Stderr, "durablequeue:", err)
		os.Exit(1)
	}
}

// dqRec is one redo-log record, immutable once written.
type dqRec struct{ arg hist.Value }

// dqueue is the buggy roll-forward queue. items is the committed queue
// (durable); logVol/logDur are the volatile cache and durable cell of
// each process's redo log (1-based).
type dqueue struct {
	items  []hist.Value
	logVol []*dqRec
	logDur []*dqRec
}

func newDQueue(n int) *dqueue {
	return &dqueue{logVol: make([]*dqRec, n+1), logDur: make([]*dqRec, n+1)}
}

// logName is the footprint label of proc p's redo log.
func logName(p int) string { return fmt.Sprintf("log.%d", p) }

// deq is the shared single-window dequeue body.
func (q *dqueue) deq(p *run.Proc) hist.Value {
	p.Access("q", true)
	var out hist.Value
	if len(q.items) == 0 {
		out = "empty"
	} else {
		out = q.items[0]
		q.items = q.items[1:]
	}
	p.Observe(out)
	return out
}

func (q *dqueue) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "enq":
		id := p.ID()
		p.Exec("log", func() {
			p.Access(logName(id), true)
			q.logVol[id] = &dqRec{arg: inv.Arg}
		})
		p.Exec("log-flush", func() {
			p.Access(logName(id), true)
			q.logDur[id] = q.logVol[id]
		})
		p.Exec("apply", func() {
			p.Access("q", true)
			q.items = append(q.items, inv.Arg)
		})
		p.Exec("log-clear", func() {
			p.Access(logName(id), true)
			q.logVol[id] = nil
		})
		p.Exec("clear-flush", func() {
			p.Access(logName(id), true)
			q.logDur[id] = nil
			out = hist.OK
		})
	case "deq":
		p.Exec("deq", func() { out = q.deq(p) })
	}
	return out
}

// dqFrame is one in-flight operation in continuation form. pc (enq): 0 =
// write log, 1 = flush log, 2 = apply, 3 = clear log, 4 = flush the
// clear; deq is a single window.
type dqFrame struct {
	q   *dqueue
	inv run.Invocation
	pc  int
}

// Begin implements run.Stepped.
func (q *dqueue) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "enq", "deq":
		return &dqFrame{q: q, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *dqFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	q := f.q
	if f.inv.Op == "deq" {
		return q.deq(p), run.StepDone
	}
	id := p.ID()
	switch f.pc {
	case 0:
		p.Access(logName(id), true)
		q.logVol[id] = &dqRec{arg: f.inv.Arg}
	case 1:
		p.Access(logName(id), true)
		q.logDur[id] = q.logVol[id]
	case 2:
		p.Access("q", true)
		q.items = append(q.items, f.inv.Arg)
	case 3:
		p.Access(logName(id), true)
		q.logVol[id] = nil
	case 4:
		p.Access(logName(id), true)
		q.logDur[id] = nil
		return hist.OK, run.StepDone
	}
	f.pc++
	return nil, run.StepPaused
}

// Fork implements run.Frame.
func (f *dqFrame) Fork() run.Frame {
	c := *f
	return &c
}

func (q *dqueue) Footprints() bool { return true }

// CrashVolatile implements run.Recoverable: every log cache reverts to
// its durable cell; the committed queue survives.
func (q *dqueue) CrashVolatile() {
	copy(q.logVol, q.logDur)
}

// RecoverFrame implements run.Recoverable.
func (q *dqueue) RecoverFrame() run.Frame { return &dqRecovery{q: q} }

// dqRecovery is the recovery routine: read the durable log and roll it
// forward. pc: 0 = read log (done if empty), 1 = re-apply, 2 = clear
// log, 3 = flush the clear.
type dqRecovery struct {
	q   *dqueue
	pc  int
	rec *dqRec
}

// Step implements run.Frame.
func (f *dqRecovery) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	q := f.q
	id := p.ID()
	switch f.pc {
	case 0:
		p.Access(logName(id), false)
		if q.logVol[id] == nil {
			return nil, run.StepDone
		}
		f.rec = q.logVol[id]
	case 1:
		// THE BUG: roll the log forward unconditionally. If the crashed
		// enqueue already applied (crash after pc 2, before pc 4), this
		// enqueues the element a second time. The correct protocol guards
		// the redo with the intent's pre-state (internal/queue.Persistent).
		p.Access("q", true)
		q.items = append(q.items, f.rec.arg)
	case 2:
		p.Access(logName(id), true)
		q.logVol[id] = nil
	case 3:
		p.Access(logName(id), true)
		q.logDur[id] = nil
		return nil, run.StepDone
	}
	f.pc++
	return nil, run.StepPaused
}

// Fork implements run.Frame.
func (f *dqRecovery) Fork() run.Frame {
	c := *f
	return &c
}

func (q *dqueue) Fingerprint(f *run.Fingerprinter) {
	f.Str("dq")
	f.Int(len(q.items))
	for _, v := range q.items {
		f.Val(v)
	}
	for p := 1; p < len(q.logVol); p++ {
		for _, r := range [2]*dqRec{q.logVol[p], q.logDur[p]} {
			if r == nil {
				f.Int(0)
			} else {
				f.Int(1)
				f.Val(r.arg)
			}
		}
	}
}

// dqState is a captured configuration (log records are immutable, so
// the slices copy shallowly).
type dqState struct {
	items  []hist.Value
	logVol []*dqRec
	logDur []*dqRec
}

func (q *dqueue) Snapshot() any {
	return dqState{
		items:  append([]hist.Value(nil), q.items...),
		logVol: append([]*dqRec(nil), q.logVol...),
		logDur: append([]*dqRec(nil), q.logDur...),
	}
}

func (q *dqueue) Restore(s any) {
	st := s.(dqState)
	q.items = append(q.items[:0:0], st.items...)
	copy(q.logVol, st.logVol)
	copy(q.logDur, st.logDur)
}

// scenario: process 1 enqueues once, process 2 dequeues twice. One
// enqueue can fill the queue at most once, so a second successful
// dequeue of "a" is the duplicate.
func scenario() []slx.Option {
	return []slx.Option{
		slx.WithProcs(2),
		slx.WithObject(func() run.Object { return newDQueue(2) }),
		slx.WithEnv(func() run.Environment {
			return run.Script(map[int][]run.Invocation{
				1: {{Op: "enq", Arg: "a"}},
				2: {{Op: "deq"}, {Op: "deq"}},
			})
		}),
		slx.WithDepth(12),
	}
}

func play() error {
	prop := check.StrictLinearizability(check.QueueSpec{})

	// Without crashes the protocol is correct: exhaustive exploration is
	// clean.
	rep, err := slx.New(scenario()...).Explore(prop)
	if err != nil {
		return err
	}
	fmt.Printf("no crashes:          ok=%v over %d prefixes\n", rep.OK(), rep.Prefixes)
	if !rep.OK() {
		return fmt.Errorf("crash-free exploration must be clean: %s", rep.Failures()[0])
	}

	// Crashes alone cannot reach the bug either: a crashed process never
	// replays its log.
	rep, err = slx.New(append(scenario(), slx.WithCrashes(1))...).Explore(prop)
	if err != nil {
		return err
	}
	fmt.Printf("crashes=1:           ok=%v over %d prefixes\n", rep.OK(), rep.Prefixes)
	if !rep.OK() {
		return fmt.Errorf("crash-only exploration must be clean: %s", rep.Failures()[0])
	}

	// Crash + recover: the roll-forward duplicate is reachable and strict
	// linearizability rejects it.
	rep, err = slx.New(append(scenario(), slx.WithCrashes(1), slx.WithRecoveries(1))...).Explore(prop)
	if err != nil {
		return err
	}
	fmt.Printf("crashes=1 recover=1: ok=%v over %d prefixes\n", rep.OK(), rep.Prefixes)
	if rep.OK() {
		return fmt.Errorf("recovery exploration must find the roll-forward duplicate")
	}
	witness := rep.Witness()
	fmt.Printf("violation: %s\n  witness: %v\n", rep.Failures()[0].Reason, witness)

	// The recorded witness — crash and recover decisions included —
	// replays to the same verdict.
	replay, err := slx.New(append(scenario(), slx.WithMaxSteps(len(witness)+1))...).Replay(witness, prop)
	if err != nil {
		return err
	}
	if replay.OK() {
		return fmt.Errorf("witness %v replayed clean", witness)
	}
	fmt.Printf("witness replay:      ok=false (%s)\n", replay.Failures()[0].Reason)
	return nil
}
