// Quickstart: run a consensus implementation on the deterministic
// shared-memory simulator, check its safety, and evaluate liveness
// verdicts — the repository's end-to-end loop in thirty lines.
package main

import (
	"fmt"
	"os"

	"repro/internal/consensus"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three processes propose different values to the obstruction-free
	// register-based consensus and keep re-proposing (the liveness
	// environment); a seeded random scheduler interleaves them fairly.
	res := sim.Run(sim.Config{
		Procs:     3,
		Object:    consensus.NewCommitAdoptOF(3),
		Env:       consensus.ProposeForever(map[int]history.Value{1: 10, 2: 20, 3: 30}),
		Scheduler: sim.Limit(sim.Random(42), 600),
		MaxSteps:  600,
	})
	if res.Err != nil {
		return res.Err
	}

	fmt.Printf("ran %d steps; history has %d events\n", res.Steps, len(res.H))
	fmt.Printf("decisions: %v\n", safety.Decisions(res.H))
	fmt.Printf("agreement+validity: %v\n", (safety.AgreementValidity{}).Holds(res.H))

	e := liveness.FromResult(res, 0)
	for _, p := range []liveness.Property{
		liveness.WaitFreedom{},
		liveness.LK{L: 1, K: 1},
		liveness.LK{L: 1, K: 3},
	} {
		fmt.Printf("%-14s: %v\n", p.Name(), p.Holds(e))
	}
	return nil
}
