// Quickstart: run a consensus implementation on the deterministic
// shared-memory simulator and judge safety and liveness through one
// unified Checker — the public slx API's end-to-end loop in thirty
// lines.
package main

import (
	"fmt"
	"os"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/run"
)

func main() {
	if err := play(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func play() error {
	// Three processes propose different values to the obstruction-free
	// register-based consensus and keep re-proposing (the liveness
	// environment); a seeded random scheduler interleaves them fairly.
	c := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(3) }),
		slx.WithEnv(func() run.Environment {
			return consensus.ProposeForever(map[int]hist.Value{1: 10, 2: 20, 3: 30})
		}),
		slx.WithProcs(3),
		slx.WithScheduler(func() run.Scheduler { return run.Random(42) }),
		slx.WithMaxSteps(600),
	)

	// One Check call judges a safety property and liveness properties on
	// the same execution, returning one unified Verdict per property.
	rep, err := c.Check(
		check.AgreementValidity(),
		check.WaitFreedom(nil),
		check.LK(1, 1, nil),
		check.LK(1, 3, nil),
	)
	if err != nil {
		return err
	}

	e := rep.Execution
	fmt.Printf("ran %d steps; history has %d events\n", e.Steps, len(e.H))
	fmt.Printf("decisions: %v\n", check.Decisions(e.H))
	for _, v := range rep.Verdicts {
		fmt.Printf("%-18s: %v\n", v.Property, v.Holds)
	}
	return nil
}
