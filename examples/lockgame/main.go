// Lockgame: the safety-liveness trade-off in the lock world the paper's
// Section 3.2 references — starvation-freedom is L_max for lock-based
// implementations. Peterson (registers) is starvation-free; the
// test-and-set spinlock is only deadlock-free, and a fair adversary
// schedule starves one process forever. Each scenario is one configured
// Checker judging mutual exclusion and lock liveness on the same run.
package main

import (
	"fmt"
	"os"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/mutex"
	"repro/slx/run"
)

func main() {
	if err := play(); err != nil {
		fmt.Fprintln(os.Stderr, "lockgame:", err)
		os.Exit(1)
	}
}

func acquisitions(h hist.History) map[int]int {
	out := make(map[int]int)
	for _, e := range h {
		if e.Kind == hist.KindResponse && e.Val == mutex.Locked {
			out[e.Proc]++
		}
	}
	return out
}

func play() error {
	fmt.Println("== Peterson lock under fair round-robin ==")
	pet, err := slx.New(
		slx.WithObject(func() run.Object { return mutex.NewPeterson() }),
		slx.WithEnv(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
		slx.WithProcs(2),
		slx.WithMaxSteps(600),
	).Check(check.MutualExclusion(), mutex.StarvationFreedom())
	if err != nil {
		return err
	}
	me, _ := pet.Verdict("mutual-exclusion")
	sf, _ := pet.Verdict("wait-freedom")
	fmt.Printf("acquisitions: %v; mutual exclusion: %v; starvation-freedom: %v\n\n",
		acquisitions(pet.Execution.H), me.Holds, sf.Holds)

	fmt.Println("== TAS spinlock under the starvation adversary (fair!) ==")
	tas, err := slx.New(
		slx.WithObject(func() run.Object { return mutex.NewTASLock() }),
		slx.WithEnv(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
		slx.WithProcs(2),
		slx.WithScheduler(func() run.Scheduler { return mutex.StarveTAS(2, 1) }),
		slx.WithMaxSteps(800),
	).Check(check.Fair(), mutex.DeadlockFreedom(), mutex.StarvationFreedom())
	if err != nil {
		return err
	}
	fmt.Printf("acquisitions: %v (victim p2 starves while stepping forever)\n",
		acquisitions(tas.Execution.H))
	fair, _ := tas.Verdict("fair")
	df, _ := tas.Verdict("1-lock-freedom")
	sf, _ = tas.Verdict("wait-freedom")
	fmt.Printf("fair: %v; deadlock-freedom: %v; starvation-freedom: %v\n", fair.Holds, df.Holds, sf.Holds)
	if w := tas.Witness(); w != nil {
		fmt.Printf("starvation witness: %d replayable decisions\n\n", len(w))
	}

	fmt.Println("== Bakery lock, three processes, first-come-first-served ==")
	bak, err := slx.New(
		slx.WithObject(func() run.Object { return mutex.NewBakery(3) }),
		slx.WithEnv(func() run.Environment { return mutex.AcquireReleaseLoop(3) }),
		slx.WithProcs(3),
		slx.WithMaxSteps(2000),
	).Check(mutex.StarvationFreedom())
	if err != nil {
		return err
	}
	sf, _ = bak.Verdict("wait-freedom")
	fmt.Printf("acquisitions: %v; starvation-freedom: %v\n",
		acquisitions(bak.Execution.H), sf.Holds)
	return nil
}
