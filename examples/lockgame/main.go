// Lockgame: the safety-liveness trade-off in the lock world the paper's
// Section 3.2 references — starvation-freedom is L_max for lock-based
// implementations. Peterson (registers) is starvation-free; the
// test-and-set spinlock is only deadlock-free, and a fair adversary
// schedule starves one process forever.
package main

import (
	"fmt"
	"os"

	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/mutex"
	"repro/internal/safety"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lockgame:", err)
		os.Exit(1)
	}
}

func acquisitions(h history.History) map[int]int {
	out := make(map[int]int)
	for _, e := range h {
		if e.Kind == history.KindResponse && e.Val == mutex.Locked {
			out[e.Proc]++
		}
	}
	return out
}

func run() error {
	fmt.Println("== Peterson lock under fair round-robin ==")
	pet := sim.Run(sim.Config{
		Procs:     2,
		Object:    mutex.NewPeterson(),
		Env:       mutex.AcquireReleaseLoop(2),
		Scheduler: sim.Limit(&sim.RoundRobin{}, 600),
		MaxSteps:  600,
	})
	e := liveness.FromResult(pet, 0)
	fmt.Printf("acquisitions: %v; mutual exclusion: %v; starvation-freedom: %v\n\n",
		acquisitions(pet.H),
		(safety.MutualExclusion{}).Holds(pet.H),
		mutex.StarvationFreedom().Holds(e))

	fmt.Println("== TAS spinlock under the starvation adversary (fair!) ==")
	tas := sim.Run(sim.Config{
		Procs:     2,
		Object:    mutex.NewTASLock(),
		Env:       mutex.AcquireReleaseLoop(2),
		Scheduler: sim.Limit(mutex.StarveTAS(2, 1), 800),
		MaxSteps:  800,
	})
	et := liveness.FromResult(tas, 0)
	fmt.Printf("acquisitions: %v (victim p2 starves while stepping forever)\n", acquisitions(tas.H))
	fmt.Printf("fair: %v; deadlock-freedom: %v; starvation-freedom: %v\n\n",
		et.Fair(),
		mutex.DeadlockFreedom().Holds(et),
		mutex.StarvationFreedom().Holds(et))

	fmt.Println("== Bakery lock, three processes, first-come-first-served ==")
	bak := sim.Run(sim.Config{
		Procs:     3,
		Object:    mutex.NewBakery(3),
		Env:       mutex.AcquireReleaseLoop(3),
		Scheduler: sim.Limit(&sim.RoundRobin{}, 2000),
		MaxSteps:  2000,
	})
	eb := liveness.FromResult(bak, 0)
	fmt.Printf("acquisitions: %v; starvation-freedom: %v\n",
		acquisitions(bak.H), mutex.StarvationFreedom().Holds(eb))
	return nil
}
