// Lkplane: classify the whole (l,k)-freedom lattice against consensus
// safety, TM opacity and the Section 5.3 property S, reproducing both
// panels of the paper's Figure 1 plus the counterexample plane.
package main

import (
	"fmt"
	"os"

	"repro/slx/plane"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lkplane:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 4

	pa, err := plane.Figure1a(n)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", pa.Render())
	sa, _ := pa.StrongestImplementable()
	wa, _ := pa.WeakestNonImplementable()
	fmt.Printf("Theorem 5.2: strongest implementable %v, weakest non-implementable %v\n\n", sa, wa)

	pb := plane.Figure1b(n)
	fmt.Printf("%s\n", pb.Render())
	sb, _ := pb.StrongestImplementable()
	wb, _ := pb.WeakestNonImplementable()
	fmt.Printf("Theorem 5.3: strongest implementable %v, weakest non-implementable %v (incomparable: %v)\n\n",
		sb, wb, !sb.Comparable(wb))

	ps := plane.Section53Plane(n)
	fmt.Printf("%s\n", ps.Render())
	fmt.Printf("Section 5.3: minimal blacks %v — no weakest (l,k)-freedom excludes S\n",
		ps.MinimalBlacks())
	return nil
}
