// Queueblast: a seeded deep bug only sampling can reach. Eight
// processes hammer a bounded FIFO queue whose enqueue silently evicts
// the oldest element once three items are buffered. Exposing the bug
// takes four completed enqueues — two granted steps each, eight steps
// minimum — plus a dequeue to observe the loss, so NO schedule of depth
// 7 can violate linearizability: exhaustive exploration at -depth 7 is
// provably clean while the bug is alive. PCT sampling at depth 24
// reaches it in a handful of schedules and hands back a replayable
// witness.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
)

func main() {
	if err := play(); err != nil {
		fmt.Fprintln(os.Stderr, "queueblast:", err)
		os.Exit(1)
	}
}

// capacity is the buffer bound past which blastQueue drops its head.
const capacity = 3

// blastQueue is the buggy bounded queue. Enqueue takes two granted
// steps (reserve, then publish) so the minimal violating schedule is
// provably deeper than the exhaustive ceiling used below.
//
//slx:norecover the blast scenario is crash-free; all state is modeled durable
type blastQueue struct{ items []hist.Value }

func (q *blastQueue) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "enq":
		p.Exec("reserve", func() {
			p.Access("q", true)
		})
		p.Exec("publish", func() {
			out = hist.OK
			p.Access("q", true)
			q.items = append(q.items, inv.Arg)
			if len(q.items) > capacity {
				// The seeded bug: silently evict the oldest element.
				q.items = q.items[1:]
			}
		})
	case "deq":
		p.Exec("deq", func() {
			p.Access("q", true)
			if len(q.items) == 0 {
				out = "empty"
			} else {
				out = q.items[0]
				q.items = q.items[1:]
			}
			p.Observe(out)
		})
	}
	return out
}

// blastFrame is one in-flight operation in continuation form:
// reserve+publish for enq, one window for deq.
type blastFrame struct {
	q   *blastQueue
	inv run.Invocation
	pc  int
}

// Begin implements run.Stepped.
func (q *blastQueue) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "enq", "deq":
		return &blastFrame{q: q, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *blastFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	q := f.q
	if f.inv.Op == "enq" {
		if f.pc == 0 { // reserve
			p.Access("q", true)
			f.pc = 1
			return nil, run.StepPaused
		}
		// publish
		p.Access("q", true)
		q.items = append(q.items, f.inv.Arg)
		if len(q.items) > capacity {
			// The seeded bug: silently evict the oldest element.
			q.items = q.items[1:]
		}
		return hist.OK, run.StepDone
	}
	p.Access("q", true)
	var out hist.Value
	if len(q.items) == 0 {
		out = "empty"
	} else {
		out = q.items[0]
		q.items = q.items[1:]
	}
	p.Observe(out)
	return out, run.StepDone
}

// Fork implements run.Frame.
func (f *blastFrame) Fork() run.Frame {
	c := *f
	return &c
}

func (q *blastQueue) Footprints() bool { return true }

func (q *blastQueue) Fingerprint(f *run.Fingerprinter) {
	f.Str("q")
	f.Int(len(q.items))
	for _, v := range q.items {
		f.Val(v)
	}
}

func (q *blastQueue) Snapshot() any { return append([]hist.Value(nil), q.items...) }

func (q *blastQueue) Restore(s any) { q.items = append(q.items[:0:0], s.([]hist.Value)...) }

// scenario: processes 1-4 enqueue one value each (string payloads, as
// the queue specification requires), processes 5-8 dequeue twice.
func scenario() []slx.Option {
	return []slx.Option{
		slx.WithObject(func() run.Object { return &blastQueue{} }),
		slx.WithEnv(func() run.Environment {
			script := map[int][]run.Invocation{}
			for p := 1; p <= 4; p++ {
				script[p] = []run.Invocation{{Op: "enq", Arg: fmt.Sprintf("v%d", p)}}
			}
			for p := 5; p <= 8; p++ {
				script[p] = []run.Invocation{{Op: "deq"}, {Op: "deq"}}
			}
			return run.Script(script)
		}),
		slx.WithProcs(8),
	}
}

func play() error {
	prop := check.Linearizability(check.QueueSpec{})

	// Exhaustive exploration below the minimal violating depth: clean,
	// and the 8-proc branching already costs hundreds of thousands of
	// prefixes.
	full, err := slx.New(append(scenario(), slx.WithDepth(7))...).Explore(prop)
	if err != nil {
		return err
	}
	fmt.Printf("exhaustive -depth 7: ok=%v over %d prefixes (a violation needs 4 enqueues = 8 steps, so depth 7 cannot reach it)\n",
		full.OK(), full.Prefixes)
	if !full.OK() {
		return fmt.Errorf("depth-7 exploration must be clean: %s", full.Failures()[0])
	}

	// PCT sampling at depth 24: schedules to first bug for several
	// change-point budgets, under one fixed master seed.
	const budget = 20000
	fmt.Printf("\n%-4s %-20s %-16s %s\n", "d", "schedules-to-bug", "distinct-states", "witness")
	var witness []run.Decision
	for _, d := range []int{0, 1, 2, 3, 5, 8} {
		start := time.Now()
		rep, err := slx.New(append(scenario(),
			slx.WithDepth(24),
			slx.WithSample(budget, d),
			slx.WithSeed(1),
			slx.WithWorkers(4),
		)...).Explore(prop)
		if err != nil {
			return err
		}
		if rep.OK() {
			fmt.Printf("%-4d %-20s %-16d (none in %d schedules, %.1fs)\n",
				d, "not found", rep.DistinctStates, budget, time.Since(start).Seconds())
			continue
		}
		fmt.Printf("%-4d %-20d %-16d len=%d seed=%d\n",
			d, rep.Schedules, rep.DistinctStates, len(rep.Witness()), rep.FailingSeed)
		if witness == nil {
			witness = rep.Witness()
		}
	}
	if witness == nil {
		return fmt.Errorf("sampling must find the seeded bug at some d within %d schedules", budget)
	}

	// The recorded witness replays to the same verdict.
	replay, err := slx.New(append(scenario(), slx.WithMaxSteps(len(witness)+1))...).Replay(witness, prop)
	if err != nil {
		return err
	}
	if replay.OK() {
		return fmt.Errorf("witness %v replayed clean", witness)
	}
	fmt.Printf("\nwitness replay: ok=false (%s)\n", replay.Failures()[0].Reason)
	return nil
}
