// Consensusgame: watch the FLP/Chor-Israeli-Li bivalence adversary defeat
// a real register-based consensus implementation — and fail against a
// CAS-based one. This is the executable content of the paper's Section 4.1
// consensus corollary.
package main

import (
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consensusgame:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== round 1: adversary vs commit-adopt consensus (registers only) ==")
	adv := &adversary.Bivalence{
		NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
		V1:        0,
		V2:        1,
	}
	res, err := adv.Run(160)
	if err != nil {
		return err
	}
	fmt.Printf("adversary built a fair %d-step schedule using %d replay probes\n",
		len(res.Schedule), res.Probes)
	fmt.Printf("step counts: p1=%d p2=%d (both run forever: the schedule is fair)\n",
		res.Run.StepsBy[1], res.Run.StepsBy[2])
	fmt.Printf("external history: %s  ← nobody ever decides\n", res.Run.H)
	e := liveness.FromResult(res.Run, 0)
	fmt.Printf("(1,2)-freedom: %v — the weakest (l,k) point excluded by consensus safety\n",
		(liveness.LK{L: 1, K: 2}).Holds(e))
	fmt.Printf("safety intact: %v — the adversary wins on liveness alone\n\n",
		(safety.AgreementValidity{}).Holds(res.Run.H))

	fmt.Println("== round 2: same adversary vs CAS-based consensus ==")
	casAdv := &adversary.Bivalence{
		NewObject: func() sim.Object { return consensus.NewCASBased() },
		V1:        0,
		V2:        1,
	}
	if _, err := casAdv.Run(60); err != nil {
		fmt.Printf("adversary got stuck: %v\n", err)
		fmt.Println("(with CAS the critical configuration resolves: consensus number > 1)")
		return nil
	}
	return fmt.Errorf("the adversary should not beat CAS consensus")
}
