// Consensusgame: watch the FLP/Chor-Israeli-Li bivalence adversary defeat
// a real register-based consensus implementation — and fail against a
// CAS-based one. This is the executable content of the paper's Section 4.1
// consensus corollary, driven through the public slx Checker.
package main

import (
	"fmt"
	"os"

	"repro/slx"
	"repro/slx/adversary"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/run"
)

func main() {
	if err := play(); err != nil {
		fmt.Fprintln(os.Stderr, "consensusgame:", err)
		os.Exit(1)
	}
}

func play() error {
	fmt.Println("== round 1: adversary vs commit-adopt consensus (registers only) ==")
	strat := adversary.NewBivalenceStrategy(0, 1)
	c := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithProcs(2),
		slx.WithMaxSteps(160),
	)
	rep, err := c.Adversary(strat,
		check.LK(1, 2, nil),
		check.AgreementValidity(),
	)
	if err != nil {
		return err
	}
	e := rep.Execution
	fmt.Printf("adversary built a fair %d-step schedule using %d replay probes\n",
		len(rep.Schedule), strat.Probes())
	fmt.Printf("step counts: p1=%d p2=%d (both run forever: the schedule is fair)\n",
		e.StepsBy[1], e.StepsBy[2])
	fmt.Printf("external history: %s  ← nobody ever decides\n", e.H)
	lk, _ := rep.Verdict("(1,2)-freedom")
	av, _ := rep.Verdict("agreement+validity")
	fmt.Printf("(1,2)-freedom: %v — the weakest (l,k) point excluded by consensus safety\n", lk.Holds)
	fmt.Printf("safety intact: %v — the adversary wins on liveness alone\n", av.Holds)
	fmt.Printf("the failing verdict carries a replayable witness of %d decisions\n\n", len(lk.Witness))

	fmt.Println("== round 2: same adversary vs CAS-based consensus ==")
	casChecker := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCASBased() }),
		slx.WithProcs(2),
		slx.WithMaxSteps(60),
	)
	if _, err := casChecker.Adversary(adversary.NewBivalenceStrategy(0, 1)); err != nil {
		fmt.Printf("adversary got stuck: %v\n", err)
		fmt.Println("(with CAS the critical configuration resolves: consensus number > 1)")
		return nil
	}
	return fmt.Errorf("the adversary should not beat CAS consensus")
}
