// Tmprogress: the paper's Section 4.1 TM adversary starves process p1
// against both opaque TMs (local progress is impossible with opacity), and
// the Section 5.3 adversary aborts everything against I(1,2) — while
// two-process schedules still make commit progress (Lemma 5.4).
package main

import (
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tmprogress:", err)
		os.Exit(1)
	}
}

func commits(h history.History) map[int]int {
	out := make(map[int]int)
	for _, e := range h {
		if e.Kind == history.KindResponse && e.Val == history.Commit {
			out[e.Proc]++
		}
	}
	return out
}

func run() error {
	for _, impl := range []struct {
		name string
		mk   func() sim.Object
	}{
		{"I(1,2) — the paper's Algorithm 1", func() sim.Object { return tm.NewI12(2) }},
		{"global-CAS (AGP)", func() sim.Object { return tm.NewGlobalCAS(2) }},
	} {
		fmt.Printf("== starvation adversary vs %s ==\n", impl.name)
		adv := adversary.NewTMStarve(1, 2)
		res := adv.Attack(impl.mk(), 2, 600)
		if res.Err != nil {
			return res.Err
		}
		cs := commits(res.H)
		fmt.Printf("cycles=%d commits: p1=%d p2=%d; opacity=%v\n",
			adv.Loops(), cs[1], cs[2], safety.Opaque(res.H))
		e := liveness.FromResult(res, 0)
		fmt.Printf("local progress=%v (2,2)-freedom=%v (1,2)-freedom=%v\n\n",
			(liveness.LocalProgress{}).Holds(e),
			(liveness.LK{L: 2, K: 2, Good: liveness.TMGood()}).Holds(e),
			(liveness.LK{L: 1, K: 2, Good: liveness.TMGood()}).Holds(e))
	}

	fmt.Println("== Section 5.3 adversary vs I(1,2): three lockstep processes ==")
	s3 := adversary.NewS3(3)
	res := s3.Attack(tm.NewI12(3), 900)
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("all-aborted rounds=%d committed=%v\n", s3.Rounds(), s3.Committed())
	e := liveness.FromResult(res, 0)
	fmt.Printf("(1,3)-freedom=%v — the price of property S\n\n",
		(liveness.LK{L: 1, K: 3, Good: liveness.TMGood()}).Holds(e))

	fmt.Println("== Lemma 5.4 liveness half: I(1,2) with two processes ==")
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	lock := sim.Run(sim.Config{
		Procs:     2,
		Object:    tm.NewI12(2),
		Env:       tm.TxnLoop(tpl),
		Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
		MaxSteps:  400,
	})
	cs := commits(lock.H)
	el := liveness.FromResult(lock, 0)
	fmt.Printf("lockstep contention: commits p1=%d p2=%d; (1,2)-freedom=%v; S=%v\n",
		cs[1], cs[2],
		(liveness.LK{L: 1, K: 2, Good: liveness.TMGood()}).Holds(el),
		(safety.PropertyS{}).Holds(lock.H))
	return nil
}
