// Tmprogress: the paper's Section 4.1 TM adversary starves process p1
// against both opaque TMs (local progress is impossible with opacity), and
// the Section 5.3 adversary aborts everything against I(1,2) — while
// two-process schedules still make commit progress (Lemma 5.4). Every
// attack runs through the public slx Checker.
package main

import (
	"fmt"
	"os"

	"repro/slx"
	"repro/slx/adversary"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
	"repro/slx/tm"
)

func main() {
	if err := play(); err != nil {
		fmt.Fprintln(os.Stderr, "tmprogress:", err)
		os.Exit(1)
	}
}

func commits(h hist.History) map[int]int {
	out := make(map[int]int)
	for _, e := range h {
		if e.Kind == hist.KindResponse && e.Val == hist.Commit {
			out[e.Proc]++
		}
	}
	return out
}

func play() error {
	for _, impl := range []struct {
		name string
		mk   func() run.Object
	}{
		{"I(1,2) — the paper's Algorithm 1", func() run.Object { return tm.NewI12(2) }},
		{"global-CAS (AGP)", func() run.Object { return tm.NewGlobalCAS(2) }},
	} {
		fmt.Printf("== starvation adversary vs %s ==\n", impl.name)
		strat := adversary.NewTMStarveStrategy(1, 2)
		rep, err := slx.New(
			slx.WithObject(impl.mk),
			slx.WithProcs(2),
			slx.WithMaxSteps(600),
		).Adversary(strat,
			check.Opacity(),
			check.LocalProgress(),
			check.LK(2, 2, check.TMGood()),
			check.LK(1, 2, check.TMGood()),
		)
		if err != nil {
			return err
		}
		cs := commits(rep.Execution.H)
		op, _ := rep.Verdict("opacity")
		fmt.Printf("cycles=%d commits: p1=%d p2=%d; opacity=%v\n",
			strat.Loops(), cs[1], cs[2], op.Holds)
		lp, _ := rep.Verdict("local-progress")
		lk22, _ := rep.Verdict("(2,2)-freedom")
		lk12, _ := rep.Verdict("(1,2)-freedom")
		fmt.Printf("local progress=%v (2,2)-freedom=%v (1,2)-freedom=%v\n\n",
			lp.Holds, lk22.Holds, lk12.Holds)
	}

	fmt.Println("== Section 5.3 adversary vs I(1,2): three lockstep processes ==")
	s3 := adversary.NewS3Strategy()
	rep, err := slx.New(
		slx.WithObject(func() run.Object { return tm.NewI12(3) }),
		slx.WithProcs(3),
		slx.WithMaxSteps(900),
	).Adversary(s3, check.LK(1, 3, check.TMGood()))
	if err != nil {
		return err
	}
	fmt.Printf("all-aborted rounds=%d committed=%v\n", s3.Rounds(), s3.Committed())
	lk13, _ := rep.Verdict("(1,3)-freedom")
	fmt.Printf("(1,3)-freedom=%v — the price of property S\n\n", lk13.Holds)

	fmt.Println("== Lemma 5.4 liveness half: I(1,2) with two processes ==")
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	lock, err := slx.New(
		slx.WithObject(func() run.Object { return tm.NewI12(2) }),
		slx.WithEnv(func() run.Environment { return tm.TxnLoop(tpl) }),
		slx.WithProcs(2),
		slx.WithScheduler(func() run.Scheduler { return run.Alternate(1, 2) }),
		slx.WithMaxSteps(400),
	).Check(check.LK(1, 2, check.TMGood()), check.PropertyS())
	if err != nil {
		return err
	}
	cs := commits(lock.Execution.H)
	lk12, _ := lock.Verdict("(1,2)-freedom")
	ps, _ := lock.Verdict("S(opacity+timestamp-abort)")
	fmt.Printf("lockstep contention: commits p1=%d p2=%d; (1,2)-freedom=%v; S=%v\n",
		cs[1], cs[2], lk12.Holds, ps.Holds)
	return nil
}
