package repro_test

// Benchmarks for the extension substrates: Section 6 experiments, k-set
// agreement, the software snapshot ablation, the DSTM obstruction-free TM,
// locks, queues, and parallel exploration.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adversary"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/liveness"
	"repro/internal/mutex"
	"repro/internal/queue"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/tm"
)

// E11 — Section 6: the (n,x)-liveness family is totally ordered; strongest
// implementable (n,0), weakest non-implementable (n,1).
func BenchmarkSection6NXLiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := core.NXConsensus(2)
		if err != nil {
			b.Fatal(err)
		}
		s, okS := c.StrongestImplementable()
		w, okW := c.WeakestNonImplementable()
		if !okS || !okW || s != 0 || w != 1 {
			b.Fatalf("Section 6 mismatch: x=%d/%d", s, w)
		}
	}
}

// E12 — k-set agreement corollary: swapped adversary sets are disjoint.
func BenchmarkKSetGmaxEmpty(b *testing.B) {
	values := []history.Value{10, 20, 30}
	for i := 0; i < b.N; i++ {
		f1 := core.NewHistorySet("kF1", adversary.KSetF1(2, values)...)
		f2 := core.NewHistorySet("kF2", adversary.KSetF2(2, values)...)
		if !core.Gmax(f1, f2).Empty() {
			b.Fatal("k-set Gmax must be empty")
		}
	}
}

// Ablation — Algorithm 1 on the hardware snapshot primitive versus the
// software snapshot from registers: same guarantees, different step cost.
func BenchmarkI12SnapshotAblation(b *testing.B) {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	impls := []struct {
		name string
		mk   func() sim.Object
	}{
		{"hardware", func() sim.Object { return tm.NewI12(2) }},
		{"software", func() sim.Object {
			return tm.NewI12WithSnapshot(2, snapshot.New("R", 2, 0))
		}},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			commits := 0
			for i := 0; i < b.N; i++ {
				res := sim.Run(sim.Config{
					Procs:     2,
					Object:    impl.mk(),
					Env:       tm.TxnLoop(tpl),
					Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
					MaxSteps:  400,
				})
				for _, e := range res.H {
					if e.Kind == history.KindResponse && e.Val == history.Commit {
						commits++
					}
				}
			}
			b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
		})
	}
}

// Ablation — TM implementation progress classes under the starvation
// adversary: all three are starved (local progress is impossible with
// opacity), with different per-cycle costs.
func BenchmarkTMStarveAcrossImplementations(b *testing.B) {
	impls := []struct {
		name string
		mk   func() sim.Object
	}{
		{"I12", func() sim.Object { return tm.NewI12(2) }},
		{"GlobalCAS", func() sim.Object { return tm.NewGlobalCAS(2) }},
		{"DSTM", func() sim.Object { return tm.NewDSTM(2) }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			loops := 0
			for i := 0; i < b.N; i++ {
				adv := adversary.NewTMStarve(1, 2)
				res := adv.Attack(impl.mk(), 2, 600)
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				if adv.VictimCommitted() {
					b.Fatal("victim must never commit")
				}
				loops += adv.Loops()
			}
			b.ReportMetric(float64(loops)/float64(b.N), "starvation-cycles/run")
		})
	}
}

// Locks: acquisitions per 600-step fair run, Peterson vs TAS vs tournament.
func BenchmarkLockThroughput(b *testing.B) {
	impls := []struct {
		name  string
		procs int
		mk    func() sim.Object
	}{
		{"Peterson/2", 2, func() sim.Object { return mutex.NewPeterson() }},
		{"TAS/2", 2, func() sim.Object { return mutex.NewTASLock() }},
		{"Tournament/4", 4, func() sim.Object { return mutex.NewTournament(4) }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			acq := 0
			for i := 0; i < b.N; i++ {
				res := sim.Run(sim.Config{
					Procs:     impl.procs,
					Object:    impl.mk(),
					Env:       mutex.AcquireReleaseLoop(impl.procs),
					Scheduler: sim.Limit(&sim.RoundRobin{}, 600),
					MaxSteps:  600,
				})
				for _, e := range res.H {
					if e.Kind == history.KindResponse && e.Val == mutex.Locked {
						acq++
					}
				}
			}
			b.ReportMetric(float64(acq)/float64(b.N), "acquisitions/run")
		})
	}
}

// Queues: locked versus CAS queue operation throughput under contention.
func BenchmarkQueueThroughput(b *testing.B) {
	env := func() sim.Environment {
		return sim.EnvironmentFunc(func(proc int, v *sim.View) (sim.Invocation, bool) {
			if len(v.H.Project(proc))%4 < 2 {
				return sim.Invocation{Op: "enq", Arg: "v"}, true
			}
			return sim.Invocation{Op: "deq"}, true
		})
	}
	impls := []struct {
		name string
		mk   func() sim.Object
	}{
		{"locked", func() sim.Object { return queue.NewLocked() }},
		{"cas", func() sim.Object { return queue.NewCASQueue() }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			ops := 0
			for i := 0; i < b.N; i++ {
				res := sim.Run(sim.Config{
					Procs:     2,
					Object:    impl.mk(),
					Env:       env(),
					Scheduler: sim.Limit(sim.Alternate(1, 2), 400),
					MaxSteps:  400,
				})
				for _, e := range res.H {
					if e.Kind == history.KindResponse {
						ops++
					}
				}
			}
			b.ReportMetric(float64(ops)/float64(b.N), "ops/run")
		})
	}
}

// Software snapshot: scan cost (steps) as interference grows.
func BenchmarkSoftwareSnapshotScanSteps(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			steps := 0
			for i := 0; i < b.N; i++ {
				sw := snapshot.New("R", n, 0)
				obj := sim.ObjectFunc(func(p *sim.Proc, inv sim.Invocation) history.Value {
					if inv.Op == "scan" {
						return safety.EncodeVector(sw.Scan(p))
					}
					sw.Update(p, p.ID()-1, inv.Arg)
					return history.OK
				})
				script := map[int][]sim.Invocation{1: {{Op: "scan"}}}
				for p := 2; p <= n; p++ {
					script[p] = []sim.Invocation{{Op: "update", Arg: p}, {Op: "update", Arg: p * 10}}
				}
				res := sim.Run(sim.Config{
					Procs:     n,
					Object:    obj,
					Env:       sim.Script(script),
					Scheduler: sim.Limit(&sim.RoundRobin{}, 4000),
					MaxSteps:  4000,
				})
				steps += res.StepsBy[1]
			}
			b.ReportMetric(float64(steps)/float64(b.N), "scan-steps")
		})
	}
}

// Parallel exploration speedup.
func BenchmarkExploreParallel(b *testing.B) {
	prop := safety.AgreementValidity{}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := explore.Run(explore.Config{
					Procs:     2,
					NewObject: func() sim.Object { return consensus.NewCommitAdoptOF(2) },
					NewEnv: func() sim.Environment {
						return consensus.ProposeOnce(map[int]history.Value{1: 0, 2: 1})
					},
					Depth:   11,
					Workers: workers,
					Check:   explore.CheckSafety("agreement+validity", prop.Holds),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// DSTM: the steal-scheduler livelock versus lockstep progress (the
// lock-free / obstruction-free boundary in numbers).
func BenchmarkDSTMLockstep(b *testing.B) {
	tpl := map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
	}
	commits := 0
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.Config{
			Procs:     2,
			Object:    tm.NewDSTM(2),
			Env:       tm.TxnLoop(tpl),
			Scheduler: sim.Limit(sim.Alternate(1, 2), 600),
			MaxSteps:  600,
		})
		e := liveness.FromResult(res, 0)
		if !e.Fair() {
			b.Fatal("lockstep must be fair")
		}
		for _, ev := range res.H {
			if ev.Kind == history.KindResponse && ev.Val == history.Commit {
				commits++
			}
		}
	}
	b.ReportMetric(float64(commits)/float64(b.N), "commits/run")
}
