// Package slx is the public API of the safety–liveness exclusion engine:
// a Go reproduction of "Safety-Liveness Exclusion in Distributed
// Computing" (Bushkov & Guerraoui, PODC 2015) grown into a reusable
// property-checking harness.
//
// The package unifies the paper's two property classes — safety
// (prefix-closed sets of histories, Section 3.1) and liveness (guarantees
// over fair executions, Section 3.2) — behind one interface:
//
//	type Property interface {
//		Name() string
//		Kind() PropertyKind
//		Check(e *Execution) Verdict
//	}
//
// A Verdict carries pass/fail, a human-readable reason, and a replayable
// witness schedule: because the simulator is deterministic, feeding
// Verdict.Witness back to Checker.Replay reproduces the exact violating
// execution.
//
// The Checker is the single entry point over the engine. Configure it
// with functional options and drive it four ways, all returning the same
// Report type:
//
//	c := slx.New(
//		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
//		slx.WithEnv(func() run.Environment { return consensus.ProposeOnce(...) }),
//		slx.WithProcs(2),
//		slx.WithMaxSteps(200),
//	)
//	rep, err := c.Check(props...)            // one scheduled run
//	rep, err := c.Replay(witness, props...)  // replay a recorded schedule
//	rep, err := c.Adversary(adv, props...)   // drive an attack strategy
//	rep, err := c.Explore(props...)          // exhaustive bounded exploration
//
// The sibling packages are thin facades over the implementation layer in
// internal/: slx/hist (events and histories), slx/run (the deterministic
// scheduler-driven simulator), slx/check (the concrete safety and
// liveness properties of the paper), slx/consensus, slx/tm and slx/mutex
// (the shared-object implementations under test), slx/adversary (the
// paper's attack strategies), and slx/plane (the (l,k)-freedom lattice
// classification behind Figure 1). Because the facades use type aliases,
// values flow between all of them with no conversion.
package slx
