package slx

import (
	"repro/internal/liveness"
	"repro/slx/hist"
	"repro/slx/run"
)

// Good is a good-response set G_Tp (Section 5.1): the response values
// that constitute progress for a process. A nil Good means every response
// is good (consensus, registers).
type Good = liveness.Good

// TMGood is the transactional-memory good-response set: only commit
// events are progress.
func TMGood() Good { return liveness.TMGood() }

// Execution is the unified input to property checks: one finished run of
// the simulator, carrying both the external history (what safety
// properties judge) and the scheduling metadata (what liveness properties
// judge under the bounded "infinitely often" semantics of
// internal/liveness).
type Execution struct {
	// H is the external history.
	H hist.History
	// N is the number of processes.
	N int
	// Steps is the total number of granted steps.
	Steps int
	// StepsBy[i] counts steps granted to process i (index 0 unused).
	StepsBy []int
	// Schedule is the full decision sequence that produced the run. It is
	// the replayable identity of the execution.
	Schedule []run.Decision
	// EventSteps[i] is the step index at which H[i] was recorded.
	EventSteps []int
	// Idle, Blocked and Crashed partition the processes that were
	// permanently out of the scheduling game at the end of the run.
	Idle, Blocked, Crashed []int
	// Reason says why the run stopped.
	Reason run.StopReason
	// Window is the liveness tail-window length in steps; 0 means half
	// the run.
	Window int
}

// NewExecution builds an Execution from a simulation result. window <= 0
// defaults to half of the run's steps.
func NewExecution(res *run.Result, window int) *Execution {
	n := len(res.StepsBy) - 1
	if n < 0 {
		n = 0
	}
	return &Execution{
		H:          res.H,
		N:          n,
		Steps:      res.Steps,
		StepsBy:    res.StepsBy,
		Schedule:   res.Schedule,
		EventSteps: res.EventSteps,
		Idle:       res.Idle,
		Blocked:    res.Blocked,
		Crashed:    res.Crashed,
		Reason:     res.Reason,
		Window:     window,
	}
}

// LivenessView materializes the bounded-liveness view of the execution
// for the internal checkers; it is the bridge the slx/check facade
// judges liveness properties through. The view is rebuilt per call
// (construction is a cheap field copy), which keeps Execution safe for
// concurrent property checks.
func (e *Execution) LivenessView() *liveness.Execution {
	stepProcs := make([]int, 0, len(e.Schedule))
	for _, d := range e.Schedule {
		if !d.Crash {
			stepProcs = append(stepProcs, d.Proc)
		}
	}
	window := e.Window
	if window <= 0 {
		window = e.Steps / 2
	}
	eventSteps := e.EventSteps
	if eventSteps == nil && len(e.H) > 0 {
		eventSteps = make([]int, len(e.H))
	}
	parked := make([]int, 0, len(e.Idle)+len(e.Blocked))
	parked = append(parked, e.Idle...)
	parked = append(parked, e.Blocked...)
	return &liveness.Execution{
		H:          e.H,
		N:          e.N,
		Steps:      e.Steps,
		StepProcs:  stepProcs,
		EventSteps: eventSteps,
		Window:     window,
		Parked:     parked,
	}
}

// Fair reports whether the execution is fair in the windowed sense of
// Section 3.2: every correct, non-parked process takes at least one step
// inside the tail window. Liveness verdicts are only meaningful on fair
// executions.
func (e *Execution) Fair() bool { return e.LivenessView().Fair() }

// Correct returns the sorted processes that never crash.
func (e *Execution) Correct() []int { return e.LivenessView().Correct() }

// Steppers returns the sorted processes that take at least one step
// inside the tail window (the bounded reading of "takes infinitely many
// steps").
func (e *Execution) Steppers() []int { return e.LivenessView().Steppers() }

// Progressing returns the sorted processes that receive at least one
// good response inside the tail window (the bounded reading of "makes
// progress").
func (e *Execution) Progressing(good Good) []int { return e.LivenessView().Progressing(good) }
