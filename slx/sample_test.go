package slx_test

// Public-API coverage of sampling mode (WithSample): fixed-seed
// determinism across worker counts, seeded-bug fixtures found within a
// fixed budget with witnesses that replay to the same verdict, and the
// soundness cross-check that sampling never reports a violation
// exhaustive exploration does not.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/slx"
	"repro/slx/run"
)

// sampleBudget is the fixed schedule budget every seeded-bug fixture
// must be found within.
const sampleBudget = 2000

// seededBugCases are the violating fixtures of the POR cross-check,
// re-used as sampling targets.
func seededBugCases() map[string]struct {
	opts  []slx.Option
	props []slx.Property
} {
	all := porCases()
	return map[string]struct {
		opts  []slx.Option
		props []slx.Property
	}{
		"lossy-register/violation": all["lossy-register/violation"],
		"racy-lock/violation":      all["racy-lock/violation"],
	}
}

// TestSampleFindsSeededBugs: PCT finds each seeded-bug fixture within
// the fixed budget, records a replayable FailingSeed, and the witness
// replays to the identical failing verdict.
func TestSampleFindsSeededBugs(t *testing.T) {
	for name, tc := range seededBugCases() {
		tc := tc
		t.Run(name, func(t *testing.T) {
			prop := tc.props[0]
			rep, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
				slx.WithSample(sampleBudget, 3), slx.WithSeed(1))...).Explore(prop)
			if err != nil {
				t.Fatalf("sample explore: %v", err)
			}
			if rep.OK() {
				t.Fatalf("PCT must find the seeded bug within %d schedules:\n%s", sampleBudget, rep)
			}
			if !rep.Sampled || rep.Schedules < 1 || rep.FailingSeed == 0 {
				t.Fatalf("sampling metadata missing: %+v", rep)
			}
			if rep.Witness() == nil || rep.Execution == nil {
				t.Fatal("sampled violation must carry a witness and execution")
			}

			// The witness replays to the same failing property.
			replay, err := slx.New(tc.opts...).Replay(rep.Witness(), prop)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if replay.OK() {
				t.Fatalf("witness %v replayed clean", rep.Witness())
			}
			if rf, sf := replay.Failures()[0].Property, rep.Failures()[0].Property; rf != sf {
				t.Fatalf("replay failed %q, sampling failed %q", rf, sf)
			}

			// The failing seed re-derives the same witness as schedule 0.
			re, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
				slx.WithSample(1, 3), slx.WithSeed(rep.FailingSeed))...).Explore(prop)
			if err != nil {
				t.Fatalf("reproduce explore: %v", err)
			}
			if re.OK() || !reflect.DeepEqual(re.Witness(), rep.Witness()) {
				t.Fatalf("FailingSeed did not reproduce the witness:\nwant %v\ngot ok=%v %v", rep.Witness(), re.OK(), re.Witness())
			}
			t.Logf("%s: found at schedule %d (seed %d), witness %v", name, rep.Schedules-1, rep.FailingSeed, rep.Witness())
		})
	}
}

// TestSampleDeterministicAcrossWorkers: under a fixed master seed the
// sampled Report — schedules, coverage, steps, event scans, verdicts,
// witness, failing seed — is identical at 1 and 4 workers. Run under
// -race in CI.
func TestSampleDeterministicAcrossWorkers(t *testing.T) {
	cases := porCases()
	for _, name := range []string{"register/linearizability", "lossy-register/violation", "racy-lock/violation", "commit-adopt/crashes+workers"} {
		tc := cases[name]
		t.Run(name, func(t *testing.T) {
			runAt := func(workers int) *slx.Report {
				rep, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
					slx.WithSample(500, 3), slx.WithSeed(42), slx.WithWorkers(workers))...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("sample explore (%d workers): %v", workers, err)
				}
				return rep
			}
			one, four := runAt(1), runAt(4)
			if one.Workers != 1 || four.Workers < 1 {
				t.Fatalf("worker accounting wrong: %d / %d", one.Workers, four.Workers)
			}
			type core struct {
				Schedules, DistinctStates, SimSteps, Resims, EventScans int
				FailingSeed                                             int64
				OK                                                      bool
				Witness                                                 []run.Decision
			}
			c1 := core{one.Schedules, one.DistinctStates, one.SimSteps, one.Resims, one.EventScans, one.FailingSeed, one.OK(), one.Witness()}
			c4 := core{four.Schedules, four.DistinctStates, four.SimSteps, four.Resims, four.EventScans, four.FailingSeed, four.OK(), four.Witness()}
			if !reflect.DeepEqual(c1, c4) {
				t.Fatalf("report depends on worker count:\n1: %+v\n4: %+v", c1, c4)
			}
		})
	}
}

// TestSampleSoundOnSmallDepth: on every small-depth example, a sampled
// violation implies an exhaustive violation at the same depth and crash
// budget (sampling draws schedules from the same tree, so it can never
// report a violation exhaustive Explore does not).
func TestSampleSoundOnSmallDepth(t *testing.T) {
	for name, tc := range porCases() {
		tc := tc
		t.Run(name, func(t *testing.T) {
			full, err := slx.New(tc.opts...).Explore(tc.props...)
			if err != nil {
				t.Fatalf("exhaustive explore: %v", err)
			}
			sampled, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
				slx.WithSample(400, 2), slx.WithSeed(3))...).Explore(tc.props...)
			if err != nil {
				t.Fatalf("sample explore: %v", err)
			}
			if !sampled.OK() && full.OK() {
				t.Fatalf("sampling reported a violation exhaustive exploration does not:\n%s", sampled)
			}
			if !sampled.OK() {
				fv, sv := full.Failures()[0], sampled.Failures()[0]
				if fv.Property != sv.Property {
					t.Errorf("different properties failed: exhaustive %q, sampled %q", fv.Property, sv.Property)
				}
			}
			t.Logf("exhaustive ok=%v, sampled ok=%v (%d schedules, %d distinct states)",
				full.OK(), sampled.OK(), sampled.Schedules, sampled.DistinctStates)
		})
	}
}

// TestSampleInterruptible: cancellation mid-sampling returns the
// partial Report together with the context error.
func TestSampleInterruptible(t *testing.T) {
	tc := porCases()["register/linearizability"]
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
		slx.WithSample(10_000_000, 3), slx.WithWorkers(2), slx.WithContext(ctx))...).Explore(tc.props...)
	if err != context.DeadlineExceeded {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if rep == nil || !rep.Interrupted || !rep.Sampled {
		t.Fatalf("want partial interrupted report, got %+v", rep)
	}
	if rep.Schedules >= 10_000_000 || len(rep.Verdicts) != 0 {
		t.Fatalf("interrupted report must carry partial stats and no verdicts: %+v", rep)
	}
	t.Logf("interrupted after %d schedules, %d distinct states", rep.Schedules, rep.DistinctStates)
}

// TestSampleOptionValidation: sampling requires the incremental monitor
// path and excludes the enumeration-only options.
func TestSampleOptionValidation(t *testing.T) {
	tc := porCases()["register/linearizability"]
	base := tc.opts[:len(tc.opts):len(tc.opts)]
	for name, bad := range map[string][]slx.Option{
		"por":       append(base, slx.WithSample(10, 2), slx.WithPOR()),
		"cache":     append(base, slx.WithSample(10, 2), slx.WithStateCache()),
		"batch":     append(base, slx.WithSample(10, 2), slx.WithBatchExplore()),
		"schedules": append(base, slx.WithSample(0, 2)),
		"negative":  append(base, slx.WithSample(10, -1)),
	} {
		if _, err := slx.New(bad...).Explore(tc.props...); err == nil {
			t.Errorf("%s: invalid sampling configuration accepted", name)
		}
	}
}

// TestSampleWalkMode: the uniform random walk also finds a seeded bug
// and reports coverage.
func TestSampleWalkMode(t *testing.T) {
	tc := porCases()["lossy-register/violation"]
	rep, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
		slx.WithSample(sampleBudget, 0), slx.WithSampleWalk(), slx.WithSeed(1))...).Explore(tc.props...)
	if err != nil {
		t.Fatalf("walk explore: %v", err)
	}
	if rep.OK() {
		t.Fatalf("walk must find the lossy-register bug within %d schedules", sampleBudget)
	}
	if rep.FailingSeed == 0 || rep.Witness() == nil {
		t.Fatalf("walk violation metadata missing: %+v", rep)
	}
}
