package slx_test

// Cross-checks of sleep-set partial-order reduction through the public
// API: for every example object, Explore with WithPOR must return the
// identical verdict as full exploration — on clean objects and on
// seeded-bug objects alike — and a POR witness must replay to a real
// violation.

import (
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/mutex"
	"repro/slx/run"
	"repro/slx/tm"
)

// porRegister is a linearizable register with declared footprints,
// observations, a state fingerprint, snapshots and a continuation form
// (the reference pattern for hand-rolled session-capable objects: Apply
// is the blocking oracle, Begin/Step the equivalent frame machine).
type porRegister struct{ v hist.Value }

func (r *porRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() {
			p.Access("r", false)
			out = r.v
			p.Observe(out)
		})
	case "write":
		p.Exec("write", func() {
			out = hist.OK
			p.Access("r", true)
			r.v = inv.Arg
		})
	}
	return out
}

func (r *porRegister) Footprints() bool { return true }

func (r *porRegister) Fingerprint(f *run.Fingerprinter) { f.Str("r"); f.Val(r.v) }

func (r *porRegister) Snapshot() any { return r.v }

func (r *porRegister) Restore(s any) { r.v = s }

// porRegisterFrame is one in-flight porRegister operation: one window.
type porRegisterFrame struct {
	r   *porRegister
	inv run.Invocation
}

// Begin implements run.Stepped.
func (r *porRegister) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "read", "write":
		return &porRegisterFrame{r: r, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *porRegisterFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	if f.inv.Op == "read" {
		p.Access("r", false)
		out := f.r.v
		p.Observe(out)
		return out, run.StepDone
	}
	p.Access("r", true)
	f.r.v = f.inv.Arg
	return hist.OK, run.StepDone
}

// Fork implements run.Frame: the frame is immutable.
func (f *porRegisterFrame) Fork() run.Frame { return f }

// lossyRegister is a seeded bug: process 2's writes acknowledge without
// taking effect, so its write-then-read is not linearizable.
type lossyRegister struct{ v hist.Value }

func (r *lossyRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() {
			p.Access("r", false)
			out = r.v
			p.Observe(out)
		})
	case "write":
		p.Exec("write", func() {
			out = hist.OK
			p.Access("r", true)
			if p.ID() != 2 {
				r.v = inv.Arg
			}
		})
	}
	return out
}

func (r *lossyRegister) Footprints() bool { return true }

func (r *lossyRegister) Fingerprint(f *run.Fingerprinter) { f.Str("r"); f.Val(r.v) }

func (r *lossyRegister) Snapshot() any { return r.v }

func (r *lossyRegister) Restore(s any) { r.v = s }

// lossyRegisterFrame is one in-flight lossyRegister operation.
type lossyRegisterFrame struct {
	r   *lossyRegister
	inv run.Invocation
}

// Begin implements run.Stepped.
func (r *lossyRegister) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "read", "write":
		return &lossyRegisterFrame{r: r, inv: inv}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *lossyRegisterFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	r := f.r
	if f.inv.Op == "read" {
		p.Access("r", false)
		out := r.v
		p.Observe(out)
		return out, run.StepDone
	}
	p.Access("r", true)
	if p.ID() != 2 {
		r.v = f.inv.Arg
	}
	return hist.OK, run.StepDone
}

// Fork implements run.Frame: the frame is immutable.
func (f *lossyRegisterFrame) Fork() run.Frame { return f }

// racyLock is a seeded deep bug: test and set are separate register
// steps, so mutual exclusion breaks only on the interleavings where both
// processes read the lock free before either takes it — violations that
// live exclusively in racy branches a wrong reduction might prune.
type racyLock struct{ held bool }

func (l *racyLock) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	switch inv.Op {
	case mutex.OpAcquire:
		for {
			var free bool
			p.Exec("test", func() {
				p.Access("lock", false)
				free = !l.held
				p.Observe(free)
			})
			if free {
				p.Exec("set", func() {
					p.Access("lock", true)
					l.held = true
				})
				return mutex.Locked
			}
		}
	case mutex.OpRelease:
		p.Exec("clear", func() {
			p.Access("lock", true)
			l.held = false
		})
		return mutex.Unlocked
	}
	return nil
}

func (l *racyLock) Footprints() bool { return true }

func (l *racyLock) Fingerprint(f *run.Fingerprinter) { f.Str("lock"); f.Bool(l.held) }

func (l *racyLock) Snapshot() any { return l.held }

func (l *racyLock) Restore(s any) { l.held = s.(bool) }

// racyLockFrame is one in-flight racyLock operation: test/set rounds for
// acquire (free records a successful test, making set the next step),
// one clear for release.
type racyLockFrame struct {
	l    *racyLock
	op   string
	free bool
}

// Begin implements run.Stepped.
func (l *racyLock) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case mutex.OpAcquire, mutex.OpRelease:
		return &racyLockFrame{l: l, op: inv.Op}, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *racyLockFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	l := f.l
	if f.op == mutex.OpRelease {
		p.Access("lock", true)
		l.held = false
		return mutex.Unlocked, run.StepDone
	}
	if !f.free {
		p.Access("lock", false)
		free := !l.held
		p.Observe(free)
		f.free = free
		return nil, run.StepPaused
	}
	p.Access("lock", true)
	l.held = true
	return mutex.Locked, run.StepDone
}

// Fork implements run.Frame.
func (f *racyLockFrame) Fork() run.Frame {
	c := *f
	return &c
}

// regEnv writes a distinct value per process, then reads.
func regEnv(procs int) func() run.Environment {
	return func() run.Environment {
		script := map[int][]run.Invocation{}
		for p := 1; p <= procs; p++ {
			script[p] = []run.Invocation{{Op: "write", Arg: p}, {Op: "read"}}
		}
		return run.Script(script)
	}
}

// porCases is the example-object table of the cross-check.
func porCases() map[string]struct {
	opts  []slx.Option
	props []slx.Property
} {
	return map[string]struct {
		opts  []slx.Option
		props []slx.Property
	}{
		"register/linearizability": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return &porRegister{v: 0} }),
				slx.WithEnv(regEnv(3)),
				slx.WithProcs(3),
				slx.WithDepth(7),
			},
			props: []slx.Property{check.Linearizability(check.RegisterSpec{Initial: 0})},
		},
		"lossy-register/violation": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return &lossyRegister{v: 0} }),
				slx.WithEnv(regEnv(2)),
				slx.WithProcs(2),
				slx.WithDepth(8),
			},
			props: []slx.Property{check.Linearizability(check.RegisterSpec{Initial: 0})},
		},
		"racy-lock/violation": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return &racyLock{} }),
				slx.WithEnv(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
				slx.WithProcs(2),
				slx.WithDepth(9),
			},
			props: []slx.Property{check.MutualExclusion()},
		},
		"commit-adopt/agreement": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
				slx.WithEnv(func() run.Environment {
					return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
				}),
				slx.WithProcs(2),
				slx.WithDepth(9),
			},
			props: []slx.Property{check.AgreementValidity()},
		},
		"commit-adopt/crashes+workers": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
				slx.WithEnv(func() run.Environment {
					return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
				}),
				slx.WithProcs(2),
				slx.WithDepth(7),
				slx.WithCrashes(1),
				slx.WithWorkers(4),
			},
			props: []slx.Property{check.AgreementValidity()},
		},
		"cas-consensus/agreement": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return consensus.NewCASBased() }),
				slx.WithEnv(func() run.Environment {
					return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
				}),
				slx.WithProcs(2),
				slx.WithDepth(8),
			},
			props: []slx.Property{check.AgreementValidity()},
		},
		"peterson/mutual-exclusion": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return mutex.NewPeterson() }),
				slx.WithEnv(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
				slx.WithProcs(2),
				slx.WithDepth(8),
			},
			props: []slx.Property{check.MutualExclusion()},
		},
		"i12/property-s": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return tm.NewI12(2) }),
				slx.WithEnv(func() run.Environment {
					return tm.TxnLoop(map[int]tm.Txn{
						1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
						2: {Accesses: []tm.Access{{Var: "x"}}},
					})
				}),
				slx.WithProcs(2),
				slx.WithDepth(9),
			},
			props: []slx.Property{check.PropertyS()},
		},
		"globalcas/opacity": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return tm.NewGlobalCAS(2) }),
				slx.WithEnv(func() run.Environment {
					return tm.TxnLoop(map[int]tm.Txn{
						1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
						2: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 2}}},
					})
				}),
				slx.WithProcs(2),
				slx.WithDepth(9),
			},
			props: []slx.Property{check.Opacity()},
		},
	}
}

// TestExplorePORVerdictsMatch is the public-API acceptance gate: for
// every example object the Explore verdicts with and without WithPOR are
// identical, per property, violating objects included.
func TestExplorePORVerdictsMatch(t *testing.T) {
	for name, tc := range porCases() {
		tc := tc
		t.Run(name, func(t *testing.T) {
			full, err := slx.New(tc.opts...).Explore(tc.props...)
			if err != nil {
				t.Fatalf("full explore: %v", err)
			}
			por, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)], slx.WithPOR())...).Explore(tc.props...)
			if err != nil {
				t.Fatalf("POR explore: %v", err)
			}
			if full.OK() != por.OK() {
				t.Fatalf("verdicts differ: full OK=%v, POR OK=%v\nfull: %s\npor: %s",
					full.OK(), por.OK(), full, por)
			}
			if !full.OK() {
				fv, pv := full.Failures()[0], por.Failures()[0]
				if fv.Property != pv.Property {
					t.Errorf("different properties failed: full %q, POR %q", fv.Property, pv.Property)
				}
				if pv.Witness == nil {
					t.Error("POR failure carries no witness")
				}
			}
			if full.Pruned != 0 {
				t.Errorf("full exploration pruned %d subtrees, want 0", full.Pruned)
			}
			if por.Prefixes > full.Prefixes {
				t.Errorf("POR explored more prefixes (%d) than full exploration (%d)", por.Prefixes, full.Prefixes)
			}
			t.Logf("prefixes full=%d por=%d pruned=%d ok=%v", full.Prefixes, por.Prefixes, por.Pruned, full.OK())
		})
	}
}

// TestExplorePORWitnessReplays checks a POR witness reproduces its
// violation through Checker.Replay.
func TestExplorePORWitnessReplays(t *testing.T) {
	tc := porCases()["racy-lock/violation"]
	prop := tc.props[0]
	rep, err := slx.New(append(tc.opts, slx.WithPOR())...).Explore(prop)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.OK() {
		t.Fatal("racy lock must violate mutual exclusion")
	}
	replay, err := slx.New(tc.opts...).Replay(rep.Witness(), prop)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replay.OK() {
		t.Errorf("witness %v replayed clean:\n%s", rep.Witness(), replay)
	}
}
