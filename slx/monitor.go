package slx

import (
	"fmt"

	"repro/internal/safety"
	"repro/slx/hist"
)

// Monitor is the incremental, forkable judge of a safety property: it
// consumes a history one event at a time, reports a Verdict on demand,
// and forks at schedule branch points so exhaustive exploration never
// replays a prefix's events into a fresh checker.
//
// The contract mirrors prefix closure (Definition 3.1): once Step
// observes a violation the verdict is sticky — every further Step
// returns false. Fork must return an independent monitor: stepping
// either copy never affects the other. Monitors judge the history alone;
// the caller (Checker.Explore) attaches the witness schedule to failing
// verdicts.
type Monitor interface {
	// Step consumes the next history event and reports whether the
	// property still holds on the consumed prefix. A false return is
	// permanent.
	Step(e hist.Event) bool
	// Verdict reports the current verdict. Witness is left for the
	// caller to fill in (a monitor sees events, not schedules).
	Verdict() Verdict
	// Fork returns an independent monitor with this monitor's state.
	Fork() Monitor
}

// Digester is the optional hook a Monitor implements to make explored
// states cacheable under WithStateCache: StateDigest returns a
// canonical 64-bit digest of the monitor's residual state — everything
// its future Step verdicts can depend on — such that two monitors with
// equal digests accept and reject exactly the same event suffixes.
// ok=false marks the current state undigestable; the surrounding prefix
// is then neither looked up in nor stored to the state cache. Every
// property in slx/check digests; a custom Monitor without the hook
// simply makes explorations over it uncacheable, never unsound.
type Digester interface {
	StateDigest() (uint64, bool)
}

// BatchMonitor adapts a prefix-monotone history predicate into a Monitor
// by accumulating the history and re-judging it on every step. It is the
// fallback Explore uses for safety properties without a native
// incremental monitor (SafetyFunc closures, custom Property values whose
// Spawn returns nil); native monitors avoid the per-step re-scan.
func BatchMonitor(name string, holds func(h hist.History) bool) Monitor {
	return &batchMonitor{name: name, holds: holds}
}

// batchMonitor re-runs the batch predicate on the accumulated history.
type batchMonitor struct {
	name  string
	holds func(h hist.History) bool
	h     hist.History
	dig   safety.HistoryDigest // running digest of h, for StateDigest
	// failedAt is the 1-based length of the first violating prefix, 0
	// while the property holds.
	failedAt int
}

// Step implements Monitor.
func (m *batchMonitor) Step(e hist.Event) bool {
	if m.failedAt > 0 {
		return false
	}
	m.h = append(m.h, e)
	m.dig.Append(e)
	if !m.holds(m.h) {
		m.failedAt = len(m.h)
		return false
	}
	return true
}

// Verdict implements Monitor.
func (m *batchMonitor) Verdict() Verdict {
	v := Verdict{Property: m.name, Kind: Safety, Holds: m.failedAt == 0}
	if v.Holds {
		v.Reason = fmt.Sprintf("holds after %d events", len(m.h))
	} else {
		v.Reason = fmt.Sprintf("violated at event %d/%d: %s", m.failedAt, len(m.h), m.h[m.failedAt-1])
	}
	return v
}

// Fork implements Monitor.
func (m *batchMonitor) Fork() Monitor {
	m.h = m.h[:len(m.h):len(m.h)] // clip: a later append by either copy reallocates
	return &batchMonitor{name: m.name, holds: m.holds, h: m.h, dig: m.dig, failedAt: m.failedAt}
}

// StateDigest implements Digester. The batch monitor re-judges its
// whole accumulated history on every step, so its residual state IS the
// history: the digest is a running canonical encoding of the event
// sequence (O(1) per explored prefix), and the state cache deduplicates
// only across schedules that produced the identical external history —
// sound for any prefix-monotone predicate, however history-dependent.
func (m *batchMonitor) StateDigest() (uint64, bool) {
	return m.dig.Sum("batch:" + m.name)
}

// MonitoredSafety builds a safety Property with a native incremental
// monitor: Check judges batch executions through holds exactly like
// SafetyFunc (holds must be prefix-monotone), while Explore spawns
// monitors from spawn and feeds them events once per DFS edge. The
// catalog in slx/check builds every safety property this way.
func MonitoredSafety(name string, holds func(h hist.History) bool, spawn func() Monitor) Property {
	p := SafetyFunc(name, holds).(*funcProperty)
	p.spawn = spawn
	return p
}
