package mutex_test

import (
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/mutex"
	"repro/slx/run"
)

// TestPetersonMutualExclusion checks the Peterson lock keeps mutual
// exclusion on a contended scheduled run through the facade.
func TestPetersonMutualExclusion(t *testing.T) {
	rep, err := slx.New(
		slx.WithObject(func() run.Object { return mutex.NewPeterson() }),
		slx.WithEnv(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
		slx.WithProcs(2),
		slx.WithMaxSteps(120),
	).Check(check.MutualExclusion())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.OK() {
		t.Errorf("Peterson violated mutual exclusion:\n%s", rep)
	}
	locked := 0
	for _, e := range rep.Execution.H {
		if e.Kind == hist.KindResponse && e.Val == mutex.Locked {
			locked++
		}
	}
	if locked == 0 {
		t.Error("nobody ever acquired the lock")
	}
}

// TestStarveTASSchedule checks the starvation schedule: the TAS lock is
// deadlock-free (the owner keeps acquiring) but the victim never does.
func TestStarveTASSchedule(t *testing.T) {
	res := run.Run(run.Config{
		Procs:     2,
		Object:    mutex.NewTASLock(),
		Env:       mutex.AcquireReleaseLoop(2),
		Scheduler: run.Limit(mutex.StarveTAS(1, 2), 100),
		MaxSteps:  100,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	acquired := map[int]int{}
	for _, e := range res.H {
		if e.Kind == hist.KindResponse && e.Val == mutex.Locked {
			acquired[e.Proc]++
		}
	}
	if acquired[1] != 0 {
		t.Errorf("victim acquired %d times on the starvation schedule", acquired[1])
	}
	if acquired[2] < 2 {
		t.Errorf("owner acquired only %d times", acquired[2])
	}
}
