// Package mutex is the public facade over the lock implementations under
// test (internal/mutex): Peterson, the n-process tournament, the bakery,
// and the test-and-set spinlock with its starvation adversary — the
// Section 3.2 world where starvation-freedom is L_max.
package mutex

import (
	imutex "repro/internal/mutex"
	"repro/slx"
	"repro/slx/check"
	"repro/slx/run"
)

// Lock operation names and responses.
const (
	OpAcquire = imutex.OpAcquire
	OpRelease = imutex.OpRelease
	Locked    = imutex.Locked
	Unlocked  = imutex.Unlocked
)

// Good is the lock good-response set: only acquisitions are progress.
func Good() slx.Good { return imutex.Good() }

// StarvationFreedom is the lock L_max: every correct process that keeps
// requesting the lock acquires it infinitely often.
func StarvationFreedom() slx.Property { return check.WaitFreedom(Good()) }

// DeadlockFreedom requires that some process keeps acquiring.
func DeadlockFreedom() slx.Property { return check.LLockFreedom(1, Good()) }

// Peterson is the two-process starvation-free lock from registers.
type Peterson = imutex.Peterson

// NewPeterson creates the lock (process ids 1 and 2).
func NewPeterson() *Peterson { return imutex.NewPeterson() }

// Tournament is the n-process tournament of Peterson locks.
type Tournament = imutex.Tournament

// NewTournament creates the lock for n processes.
func NewTournament(n int) *Tournament { return imutex.NewTournament(n) }

// Bakery is Lamport's bakery lock (first-come-first-served).
type Bakery = imutex.Bakery

// NewBakery creates the lock for n processes.
func NewBakery(n int) *Bakery { return imutex.NewBakery(n) }

// TASLock is a test-and-set spinlock: deadlock-free but not
// starvation-free.
type TASLock = imutex.TASLock

// NewTASLock creates the lock.
func NewTASLock() *TASLock { return imutex.NewTASLock() }

// AcquireReleaseLoop has each of the procs processes acquire and release
// forever.
func AcquireReleaseLoop(procs int) run.Environment { return imutex.AcquireReleaseLoop(procs) }

// StarveTAS is the fair schedule on which the TAS spinlock starves
// victim while owner acquires forever.
func StarveTAS(victim, owner int) run.Scheduler { return imutex.StarveTAS(victim, owner) }
