package consensus_test

import (
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/run"
)

// TestCommitAdoptSoloDecides checks the obstruction-free guarantee
// through the facade: a process running alone decides its own value.
func TestCommitAdoptSoloDecides(t *testing.T) {
	res := run.Run(run.Config{
		Procs:     2,
		Object:    consensus.NewCommitAdoptOF(2),
		Env:       consensus.ProposeOnce(map[int]hist.Value{1: 7}),
		Scheduler: run.Solo(1),
		MaxSteps:  200,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	decisions := check.Decisions(res.H)
	if decisions[1] != 7 {
		t.Errorf("solo proposer decided %v, want its own value 7", decisions[1])
	}
}

// TestCASBasedAgreement checks the CAS consensus satisfies
// agreement+validity on a contended run.
func TestCASBasedAgreement(t *testing.T) {
	rep, err := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCASBased() }),
		slx.WithEnv(func() run.Environment {
			return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
		}),
		slx.WithProcs(2),
		slx.WithMaxSteps(50),
	).Check(check.AgreementValidity())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.OK() {
		t.Errorf("CAS consensus violated agreement+validity:\n%s", rep)
	}
}

// TestTrivialNeverResponds checks I_t blocks every process.
func TestTrivialNeverResponds(t *testing.T) {
	res := run.Run(run.Config{
		Procs:     2,
		Object:    consensus.Trivial{},
		Env:       consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1}),
		Scheduler: &run.RoundRobin{},
		MaxSteps:  50,
	})
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	for _, e := range res.H {
		if e.Kind == hist.KindResponse {
			t.Fatalf("trivial implementation responded: %s", e)
		}
	}
	if len(res.Blocked) != 2 {
		t.Errorf("blocked %v, want both processes", res.Blocked)
	}
}
