// Package consensus is the public facade over the consensus and k-set
// agreement implementations under test (internal/consensus): the
// commit-adopt obstruction-free consensus from registers, the CAS-based
// wait-free consensus, and the k-set agreement objects.
package consensus

import (
	iconsensus "repro/internal/consensus"
	"repro/slx/hist"
	"repro/slx/run"
)

// Propose is the consensus operation name.
const Propose = iconsensus.Propose

// CommitAdoptOF is the obstruction-free register-based consensus built
// from rounds of commit-adopt (the paper's Section 4.1 positive side).
type CommitAdoptOF = iconsensus.CommitAdoptOF

// NewCommitAdoptOF creates the implementation for n processes.
func NewCommitAdoptOF(n int) *CommitAdoptOF { return iconsensus.NewCommitAdoptOF(n) }

// CASBased is wait-free consensus from a single compare-and-swap object.
type CASBased = iconsensus.CASBased

// NewCASBased creates the implementation.
func NewCASBased() *CASBased { return iconsensus.NewCASBased() }

// Trivial never responds: the I_t of Theorem 4.9 (safe, zero progress).
type Trivial = iconsensus.Trivial

// RespondOnce responds to exactly one invocation system-wide, then
// blocks everyone (the I_b of Theorem 4.9).
type RespondOnce = iconsensus.RespondOnce

// DecideOwn decides each process's own proposal — legal for n-set
// agreement, illegal for consensus.
type DecideOwn = iconsensus.DecideOwn

// NewDecideOwn creates the implementation for n processes.
func NewDecideOwn(n int) *DecideOwn { return iconsensus.NewDecideOwn(n) }

// FirstAnnounced decides the first announced proposal via registers.
type FirstAnnounced = iconsensus.FirstAnnounced

// NewFirstAnnounced creates the implementation for n processes.
func NewFirstAnnounced(n int) *FirstAnnounced { return iconsensus.NewFirstAnnounced(n) }

// ProposeForever has each process re-propose its value forever (the
// liveness environment).
func ProposeForever(values map[int]hist.Value) run.Environment {
	return iconsensus.ProposeForever(values)
}

// ProposeOnce has each process propose its value once, then idle (the
// safety/exploration environment).
func ProposeOnce(values map[int]hist.Value) run.Environment {
	return iconsensus.ProposeOnce(values)
}
