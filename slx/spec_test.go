package slx

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/run"
)

// testTargetOptions is a minimal valid explore target for the internal
// tests (the check package cannot be imported here — it imports slx).
func testTargetOptions() []Option {
	return []Option{
		WithProcs(2),
		WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		WithEnv(func() run.Environment {
			return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
		}),
	}
}

// testProperty is a trivially-holding safety property.
func testProperty() Property {
	return SafetyFunc("always", func(hist.History) bool { return true })
}

// TestSpecOptionsMapping: every Spec field maps onto exactly the one
// Checker field its option sets, and a zero Spec maps onto no options
// at all (Checker defaults untouched).
func TestSpecOptionsMapping(t *testing.T) {
	if n := len(Spec{}.Options()); n != 0 {
		t.Fatalf("zero spec produced %d options, want 0", n)
	}
	full := Spec{
		Procs: 3, Depth: 9, Crashes: 1, Workers: 4,
		POR: true, Cache: true, Batch: true, Replay: true,
		Sample: true, Schedules: 500, D: 2, Walk: true,
		Seed: 42, TimeoutMs: 1500,
	}
	c := New(full.Options()...)
	checks := []struct {
		name string
		got  any
		want any
	}{
		{"procs", c.procs, 3},
		{"depth", c.depth, 9},
		{"crashes", c.crashes, 1},
		{"workers", c.workers, 4},
		{"por", c.por, true},
		{"cache", c.cache, true},
		{"batch", c.batch, true},
		{"replay", c.replay, true},
		{"sample", c.sample, true},
		{"schedules", c.schedules, 500},
		{"d", c.sampleD, 2},
		{"walk", c.walk, true},
		{"seed", c.seed, int64(42)},
		{"timeout", c.timeout, 1500 * time.Millisecond},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s: checker has %v, spec said %v", ch.name, ch.got, ch.want)
		}
	}

	// Per-field isolation: setting one field leaves every other Checker
	// knob at its default, so no spec field can leak into two options.
	defaults := New()
	fields := map[string]Spec{
		"procs":   {Procs: 5},
		"depth":   {Depth: 11},
		"crashes": {Crashes: 2},
		"workers": {Workers: 8},
		"seed":    {Seed: 7},
		"timeout": {TimeoutMs: 250},
	}
	for name, spec := range fields {
		c := New(spec.Options()...)
		touched := 0
		if c.procs != defaults.procs {
			touched++
		}
		if c.depth != defaults.depth {
			touched++
		}
		if c.crashes != defaults.crashes {
			touched++
		}
		if c.workers != defaults.workers {
			touched++
		}
		if c.seed != defaults.seed {
			touched++
		}
		if c.timeout != defaults.timeout {
			touched++
		}
		if touched != 1 {
			t.Errorf("spec field %s touched %d checker fields, want exactly 1", name, touched)
		}
	}
}

// TestSpecJSONRoundTrip: a Spec survives JSON encode/decode unchanged,
// and its zero fields stay out of the wire form.
func TestSpecJSONRoundTrip(t *testing.T) {
	orig := Spec{Depth: 24, Sample: true, Schedules: 2000, D: 3, Seed: 1, Workers: 4}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip changed the spec: %+v -> %s -> %+v", orig, data, back)
	}
	for _, absent := range []string{"procs", "crashes", "por", "cache", "batch", "replay", "walk", "timeout_ms"} {
		if jsonHasKey(t, data, absent) {
			t.Errorf("zero field %q serialized: %s", absent, data)
		}
	}
	if len(Spec{}.Options()) != 0 {
		t.Error("decoded zero spec should map to no options")
	}
}

// TestSpecNegativeWorkersRejected: a negative workers count survives
// the JSON round trip, is applied by Options (not silently skipped),
// and is rejected by ValidateExplore with the workers-isolated message
// — the full path a bad service spec takes to its 400.
func TestSpecNegativeWorkersRejected(t *testing.T) {
	orig := Spec{Workers: -2}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Workers != -2 {
		t.Fatalf("workers did not survive the round trip: %+v", back)
	}
	if n := len(back.Options()); n != 1 {
		t.Fatalf("negative workers produced %d options, want 1 (it must reach validation)", n)
	}
	c := New(append(testTargetOptions(), back.Options()...)...)
	verr := c.ValidateExplore(testProperty())
	if verr == nil {
		t.Fatal("ValidateExplore accepted workers = -2")
	}
	if !strings.Contains(verr.Error(), "workers") || !strings.Contains(verr.Error(), "-2") {
		t.Fatalf("message does not isolate the workers field: %q", verr)
	}
	if _, eerr := c.Explore(testProperty()); eerr == nil || eerr.Error() != verr.Error() {
		t.Fatalf("Explore said %q, ValidateExplore said %q", eerr, verr)
	}
}

func jsonHasKey(t *testing.T, data []byte, key string) bool {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	_, ok := m[key]
	return ok
}

// TestValidateExploreMatchesExplore: ValidateExplore accepts exactly
// what Explore would start, and rejects with the message Explore itself
// returns — the contract that lets the service 400 with in-process
// error text.
func TestValidateExploreMatchesExplore(t *testing.T) {
	base := func(extra ...Option) *Checker {
		return New(append(testTargetOptions(), extra...)...)
	}
	bad := map[string]*Checker{
		"sample+por":       base(WithSample(10, 2), WithPOR()),
		"sample+batch":     base(WithSample(10, 2), WithBatchExplore()),
		"sample+cache":     base(WithSample(10, 2), WithStateCache()),
		"no-schedules":     base(WithSample(0, 2)),
		"batch+cache":      base(WithBatchExplore(), WithStateCache()),
		"tier-sans-cache":  base(WithVisitedTier(NewVisitedTier())),
		"negative-workers": base(WithWorkers(-3)),
		"zero-workers":     base(WithWorkers(0)),
	}
	for name, c := range bad {
		verr := c.ValidateExplore(testProperty())
		if verr == nil {
			t.Errorf("%s: ValidateExplore accepted an invalid config", name)
			continue
		}
		_, eerr := c.Explore(testProperty())
		if eerr == nil || eerr.Error() != verr.Error() {
			t.Errorf("%s: Explore said %q, ValidateExplore said %q", name, eerr, verr)
		}
	}
	good := base(WithDepth(4))
	if err := good.ValidateExplore(testProperty()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := good.Explore(testProperty()); err != nil {
		t.Errorf("valid config failed to explore: %v", err)
	}
}
