// Package tm is the public facade over the transactional-memory
// implementations under test (internal/tm): the paper's Algorithm 1
// (I12), the AGP-style global-CAS TM, a simplified obstruction-free DSTM
// and the trivial Aborter.
package tm

import (
	itm "repro/internal/tm"
	"repro/slx/run"
)

// I12 is the paper's Algorithm 1: a central CAS of versioned values, a
// snapshot of per-process timestamps and the count>=3 abort rule
// (ensures opacity, property S and (1,2)-freedom — Lemma 5.4).
type I12 = itm.I12

// NewI12 creates I12 for n processes with the hardware snapshot.
func NewI12(n int) *I12 { return itm.NewI12(n) }

// SnapshotObject abstracts the timestamp snapshot used by I12.
type SnapshotObject = itm.SnapshotObject

// NewI12WithSnapshot creates I12 over a custom snapshot implementation
// (e.g. the software construction from registers).
func NewI12WithSnapshot(n int, snap SnapshotObject) *I12 { return itm.NewI12WithSnapshot(n, snap) }

// GlobalCAS is Algorithm 1 without the timestamp rule — the AGP-style TM
// (opaque, lock-free, the white column of Figure 1(b)).
type GlobalCAS = itm.GlobalCAS

// NewGlobalCAS creates the implementation for n processes.
func NewGlobalCAS(n int) *GlobalCAS { return itm.NewGlobalCAS(n) }

// DSTM is a simplified obstruction-free TM in the style of the paper's
// reference [21].
type DSTM = itm.DSTM

// NewDSTM creates the implementation for n processes.
func NewDSTM(n int) *DSTM { return itm.NewDSTM(n) }

// Aborter aborts everything: trivially opaque, zero progress.
type Aborter = itm.Aborter

// Txn is a transaction template for the TxnLoop environment.
type Txn = itm.Txn

// Access is one read or write access of a transaction template.
type Access = itm.Access

// TxnLoop has each process run its transaction template in an endless
// loop (start, accesses, tryC).
func TxnLoop(templates map[int]Txn) run.Environment { return itm.TxnLoop(templates) }

// RandomWorkload generates seeded per-process transaction templates over
// vars variables with opsPerTx accesses each.
func RandomWorkload(seed int64, procs, vars, opsPerTx int) map[int]Txn {
	return itm.RandomWorkload(seed, procs, vars, opsPerTx)
}
