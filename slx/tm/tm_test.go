package tm_test

import (
	"reflect"
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
	"repro/slx/tm"
)

// TestGlobalCASOpacityUnderContention checks the AGP-style TM commits
// under contention and stays opaque, through the facade.
func TestGlobalCASOpacityUnderContention(t *testing.T) {
	rep, err := slx.New(
		slx.WithObject(func() run.Object { return tm.NewGlobalCAS(2) }),
		slx.WithEnv(func() run.Environment {
			return tm.TxnLoop(map[int]tm.Txn{
				1: {Accesses: []tm.Access{{Write: true, Var: "x", Val: 1}}},
				2: {Accesses: []tm.Access{{Var: "x"}}},
			})
		}),
		slx.WithProcs(2),
		slx.WithMaxSteps(120),
	).Check(check.Opacity())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.OK() {
		t.Errorf("GlobalCAS violated opacity:\n%s", rep)
	}
	commits := 0
	for _, e := range rep.Execution.H {
		if e.Kind == hist.KindResponse && e.Val == hist.Commit {
			commits++
		}
	}
	if commits == 0 {
		t.Error("no transaction ever committed")
	}
}

// TestAborterIsOpaqueAndUseless checks the trivial Aborter: everything
// aborts, vacuously opaque.
func TestAborterIsOpaqueAndUseless(t *testing.T) {
	rep, err := slx.New(
		slx.WithObject(func() run.Object { return tm.Aborter{} }),
		slx.WithEnv(func() run.Environment {
			return tm.TxnLoop(map[int]tm.Txn{1: {Accesses: []tm.Access{{Var: "x"}}}})
		}),
		slx.WithProcs(1),
		slx.WithMaxSteps(40),
	).Check(check.Opacity())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.OK() {
		t.Errorf("Aborter must be (vacuously) opaque:\n%s", rep)
	}
	for _, e := range rep.Execution.H {
		if e.Kind == hist.KindResponse && e.Val == hist.Commit {
			t.Fatalf("Aborter committed: %s", e)
		}
	}
}

// TestRandomWorkloadDeterministic checks the seeded workload generator
// is reproducible.
func TestRandomWorkloadDeterministic(t *testing.T) {
	a := tm.RandomWorkload(42, 3, 2, 3)
	b := tm.RandomWorkload(42, 3, 2, 3)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different workloads")
	}
	if len(a) != 3 {
		t.Errorf("workload has %d processes, want 3", len(a))
	}
}
