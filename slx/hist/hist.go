// Package hist is the public facade over the repository's history
// formalism (Section 2 of Bushkov & Guerraoui, PODC 2015): events,
// histories, per-process projection, prefixes, equivalence and the
// transactional view. All types are aliases of the implementation in
// internal/history, so values flow freely between the public API and the
// engine with no conversion.
package hist

import "repro/internal/history"

// Kind distinguishes invocation, response and crash events.
type Kind = history.Kind

// Event kinds.
const (
	KindInvoke   = history.KindInvoke
	KindResponse = history.KindResponse
	KindCrash    = history.KindCrash
)

// Value is a datum carried by an invocation or response; it must be
// comparable with ==.
type Value = history.Value

// Distinguished transactional-memory response values (ok / A / C).
const (
	OK     = history.OK
	Abort  = history.Abort
	Commit = history.Commit
)

// TM operation names (start, read, write, tryC).
const (
	TMStart = history.TMStart
	TMRead  = history.TMRead
	TMWrite = history.TMWrite
	TMTryC  = history.TMTryC
)

// Event is a single external action of an implementation automaton.
type Event = history.Event

// History is a finite sequence of external events.
type History = history.History

// Op is a matched invocation/response pair within a history.
type Op = history.Op

// Tx is one transaction extracted from a TM history.
type Tx = history.Tx

// TxStatus is the completion status of a transaction.
type TxStatus = history.TxStatus

// Transaction statuses.
const (
	TxLive      = history.TxLive
	TxCommitted = history.TxCommitted
	TxAborted   = history.TxAborted
)

// VarVal is a variable/value pair observed by a transaction.
type VarVal = history.VarVal

// Invoke constructs an invocation event.
func Invoke(proc int, op string, arg Value) Event { return history.Invoke(proc, op, arg) }

// InvokeObj constructs an invocation event addressing an object.
func InvokeObj(proc int, op, obj string, arg Value) Event {
	return history.InvokeObj(proc, op, obj, arg)
}

// Response constructs a response event.
func Response(proc int, op string, val Value) Event { return history.Response(proc, op, val) }

// ResponseObj constructs a response event addressing an object.
func ResponseObj(proc int, op, obj string, val Value) Event {
	return history.ResponseObj(proc, op, obj, val)
}

// Crash constructs a crash_i event.
func Crash(proc int) Event { return history.Crash(proc) }

// Parse parses the compact textual history notation produced by
// History.String (e.g. "⟨p1 propose(0)⟩ ⟨p1 propose→0⟩").
func Parse(s string) (History, error) { return history.Parse(s) }

// MustParse is Parse panicking on error; for tests and fixtures.
func MustParse(s string) History { return history.MustParse(s) }

// Transactions extracts the per-process transactions of a TM history.
func Transactions(h History) []*Tx { return history.Transactions(h) }

// Concurrent reports whether two transactions overlap in real time.
func Concurrent(a, b *Tx) bool { return history.Concurrent(a, b) }

// TxPrecedes reports whether a completes before b starts.
func TxPrecedes(a, b *Tx) bool { return history.TxPrecedes(a, b) }

// PrecedesRealTime reports whether operation a responds before b invokes.
func PrecedesRealTime(a, b Op) bool { return history.PrecedesRealTime(a, b) }
