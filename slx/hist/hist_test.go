package hist_test

import (
	"reflect"
	"testing"

	"repro/slx/hist"
)

// TestBuildAndParseRoundTrip checks the constructors and that Parse
// inverts String.
func TestBuildAndParseRoundTrip(t *testing.T) {
	h := hist.History{
		hist.Invoke(1, "propose", 0),
		hist.Invoke(2, "propose", 1),
		hist.Response(1, "propose", 0),
		hist.Crash(2),
	}
	parsed, err := hist.Parse(h.String())
	if err != nil {
		t.Fatalf("parse %q: %v", h.String(), err)
	}
	if !reflect.DeepEqual(parsed, h) {
		t.Errorf("round trip changed the history:\n in: %s\nout: %s", h, parsed)
	}
	if hist.MustParse(h.String()).String() != h.String() {
		t.Error("MustParse/String not stable")
	}
}

// TestTransactionsAndPrecedence checks the transactional view and
// real-time precedence helpers on a two-transaction TM history.
func TestTransactionsAndPrecedence(t *testing.T) {
	h := hist.History{
		hist.Invoke(1, hist.TMStart, nil),
		hist.Response(1, hist.TMStart, hist.OK),
		hist.Invoke(1, hist.TMTryC, nil),
		hist.Response(1, hist.TMTryC, hist.Commit),
		hist.Invoke(2, hist.TMStart, nil),
		hist.Response(2, hist.TMStart, hist.OK),
		hist.Invoke(2, hist.TMTryC, nil),
		hist.Response(2, hist.TMTryC, hist.Abort),
	}
	txs := hist.Transactions(h)
	if len(txs) != 2 {
		t.Fatalf("extracted %d transactions, want 2", len(txs))
	}
	if txs[0].Status != hist.TxCommitted || txs[1].Status != hist.TxAborted {
		t.Errorf("statuses %v/%v, want committed/aborted", txs[0].Status, txs[1].Status)
	}
	if !hist.TxPrecedes(txs[0], txs[1]) {
		t.Error("t1 completes before t2 starts, TxPrecedes must hold")
	}
	if hist.Concurrent(txs[0], txs[1]) {
		t.Error("sequential transactions reported concurrent")
	}
}
