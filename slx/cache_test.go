package slx_test

// Cross-checks of the state-fingerprint cache through the public API:
// for every example object, Explore with WithStateCache must return the
// identical verdict as exploration without it — with POR off and on, on
// clean objects and on seeded-bug objects alike — and a cached witness
// must replay to a real violation. This is the acceptance gate of the
// cache's soundness story (see DESIGN.md "State caching"): the cache key
// combines the simulator's configuration fingerprint with the property
// monitors' canonical residual-state digests, so a hit implies the
// already-explored subtree judged the same futures the pruned one would.

import (
	"strings"
	"testing"

	"repro/slx"
)

// TestExploreCacheVerdictsMatch is the public-API acceptance gate: for
// every example object the Explore verdicts with and without
// WithStateCache are identical — per property, with POR off and on —
// violating objects included.
func TestExploreCacheVerdictsMatch(t *testing.T) {
	for name, tc := range porCases() {
		tc := tc
		for _, por := range []bool{false, true} {
			sub := name + "/por=off"
			if por {
				sub = name + "/por=on"
			}
			t.Run(sub, func(t *testing.T) {
				base := tc.opts[:len(tc.opts):len(tc.opts)]
				if por {
					base = append(base, slx.WithPOR())
					base = base[:len(base):len(base)]
				}
				plain, err := slx.New(base...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("explore: %v", err)
				}
				cached, err := slx.New(append(base, slx.WithStateCache())...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("cached explore: %v", err)
				}
				if plain.OK() != cached.OK() {
					t.Fatalf("verdicts differ: plain OK=%v, cached OK=%v\nplain: %s\ncached: %s",
						plain.OK(), cached.OK(), plain, cached)
				}
				if !plain.OK() {
					pv, cv := plain.Failures()[0], cached.Failures()[0]
					if pv.Property != cv.Property {
						t.Errorf("different properties failed: plain %q, cached %q", pv.Property, cv.Property)
					}
					if cv.Witness == nil {
						t.Error("cached failure carries no witness")
					}
				}
				if plain.CacheHits != 0 {
					t.Errorf("cache off reported %d hits, want 0", plain.CacheHits)
				}
				if cached.Prefixes > plain.Prefixes {
					t.Errorf("cached exploration explored more prefixes (%d) than plain (%d)", cached.Prefixes, plain.Prefixes)
				}
				t.Logf("prefixes plain=%d cached=%d hits=%d ok=%v", plain.Prefixes, cached.Prefixes, cached.CacheHits, plain.OK())
			})
		}
	}
}

// TestExploreCacheWitnessReplays checks a violation witness found with
// the cache on reproduces its violation through Checker.Replay.
func TestExploreCacheWitnessReplays(t *testing.T) {
	tc := porCases()["racy-lock/violation"]
	prop := tc.props[0]
	rep, err := slx.New(append(tc.opts, slx.WithStateCache())...).Explore(prop)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.OK() {
		t.Fatal("racy lock must violate mutual exclusion")
	}
	replay, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Replay(rep.Witness(), prop)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replay.OK() {
		t.Errorf("witness %v replayed clean:\n%s", rep.Witness(), replay)
	}
}

// TestExploreCacheRequiresMonitors pins the soundness guard: the cache
// keys on monitor state digests, so the batch path rejects it.
func TestExploreCacheRequiresMonitors(t *testing.T) {
	tc := porCases()["register/linearizability"]
	_, err := slx.New(append(tc.opts, slx.WithStateCache(), slx.WithBatchExplore())...).Explore(tc.props...)
	if err == nil || !strings.Contains(err.Error(), "WithStateCache") {
		t.Fatalf("WithStateCache+WithBatchExplore must be rejected, got %v", err)
	}
}

// TestWorkersValidated pins the WithWorkers contract: values below 1
// are rejected up front with a message naming the workers field (the
// service's 400), and valid counts are recorded in Report.Workers.
func TestWorkersValidated(t *testing.T) {
	tc := porCases()["register/linearizability"]
	for _, n := range []int{-3, 0} {
		_, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)], slx.WithWorkers(n))...).Explore(tc.props...)
		if err == nil || !strings.Contains(err.Error(), "workers") {
			t.Errorf("WithWorkers(%d): want a workers validation error, got %v", n, err)
		}
	}
	for _, n := range []int{1, 4} {
		rep, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)], slx.WithWorkers(n))...).Explore(tc.props...)
		if err != nil {
			t.Fatalf("explore with %d workers: %v", n, err)
		}
		if rep.Workers != n {
			t.Errorf("WithWorkers(%d): Report.Workers = %d, want %d", n, rep.Workers, n)
		}
		if !rep.OK() {
			t.Errorf("WithWorkers(%d): unexpected violation: %s", n, rep)
		}
	}
}

// TestExploreCacheParallelVerdictsMatch checks verdicts stay identical
// when the cache, POR and the work-stealing scheduler compose, on a
// clean and on a violating object.
func TestExploreCacheParallelVerdictsMatch(t *testing.T) {
	for _, name := range []string{"register/linearizability", "racy-lock/violation", "commit-adopt/crashes+workers"} {
		tc := porCases()[name]
		t.Run(name, func(t *testing.T) {
			seq, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Explore(tc.props...)
			if err != nil {
				t.Fatalf("sequential explore: %v", err)
			}
			par, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
				slx.WithStateCache(), slx.WithPOR(), slx.WithWorkers(4))...).Explore(tc.props...)
			if err != nil {
				t.Fatalf("parallel cached explore: %v", err)
			}
			if seq.OK() != par.OK() {
				t.Fatalf("verdicts differ: sequential OK=%v, parallel+cache+por OK=%v", seq.OK(), par.OK())
			}
			if !seq.OK() {
				// The parallel witness must reproduce the violation, even if
				// the shared cache made a different equivalent witness win.
				replay, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Replay(par.Witness(), tc.props...)
				if err != nil {
					t.Fatalf("replay: %v", err)
				}
				if replay.OK() {
					t.Errorf("parallel witness %v replayed clean", par.Witness())
				}
			}
		})
	}
}

// TestExploreCacheParallelStress hammers the cache + POR + work-stealing
// composition on the seeded-bug objects: across repetitions, a violation
// must never be missed. This pins the visited-set completeness invariant
// under work-stealing — a node that hands child subtrees to the pool must
// not let any ancestor publish a cache entry while those tasks are still
// pending, or two premature entries can cross-prune each other's
// unexplored subtrees and lose the violation. Run with -race in CI.
func TestExploreCacheParallelStress(t *testing.T) {
	for _, name := range []string{"racy-lock/violation", "commit-adopt/crashes+workers"} {
		tc := porCases()[name]
		seq, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Explore(tc.props...)
		if err != nil {
			t.Fatalf("%s: sequential explore: %v", name, err)
		}
		for i := 0; i < 15; i++ {
			par, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
				slx.WithStateCache(), slx.WithPOR(), slx.WithWorkers(4))...).Explore(tc.props...)
			if err != nil {
				t.Fatalf("%s run %d: parallel cached explore: %v", name, i, err)
			}
			if seq.OK() != par.OK() {
				t.Fatalf("%s run %d: verdicts differ: sequential OK=%v, parallel+cache+por OK=%v",
					name, i, seq.OK(), par.OK())
			}
		}
	}
}

// TestExploreCacheSkipsUnfingerprintedObjects double-checks graceful
// degradation: an object without the fingerprint hook explores the
// identical tree under WithStateCache, with zero hits.
func TestExploreCacheSkipsUnfingerprintedObjects(t *testing.T) {
	tc := porCases()["i12/property-s"] // TM objects deliberately have no hook (pointer-identity CAS)
	plain, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Explore(tc.props...)
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	cached, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)], slx.WithStateCache())...).Explore(tc.props...)
	if err != nil {
		t.Fatalf("cached explore: %v", err)
	}
	if cached.CacheHits != 0 {
		t.Errorf("unfingerprintable object produced %d cache hits, want 0", cached.CacheHits)
	}
	if cached.Prefixes != plain.Prefixes || cached.SimSteps != plain.SimSteps {
		t.Errorf("cache changed the explored tree on an unfingerprintable object: %d/%d vs %d/%d",
			cached.Prefixes, cached.SimSteps, plain.Prefixes, plain.SimSteps)
	}
}
