package slx

import "time"

// Spec is the declarative, JSON-serializable form of a Checker's
// exploration configuration: the job-spec half of the slxd exploration
// service, and the round-trippable record of how a report was produced.
// Every field maps to exactly one Checker option (the Sample/Schedules/D
// triple jointly forms the one WithSample call), so a Spec plus an
// object, environment and property pins an exploration completely: the
// daemon builds its Checker through Options and a client can rebuild
// the identical in-process Checker from the same JSON. Zero values mean
// "option not applied" and leave the Checker defaults in place; invalid
// combinations are NOT diagnosed here — they surface from
// Checker.ValidateExplore (and Explore) with the usual messages, which
// is what lets a service front end reject a bad spec with exactly the
// in-process error text.
type Spec struct {
	// Procs maps to WithProcs (0: keep the default of 2).
	Procs int `json:"procs,omitempty"`
	// Depth maps to WithDepth: the exhaustive schedule-length bound, or
	// sampling's per-schedule step budget (0: keep the default of 8).
	Depth int `json:"depth,omitempty"`
	// Crashes maps to WithCrashes.
	Crashes int `json:"crashes,omitempty"`
	// Recoveries maps to WithRecoveries.
	Recoveries int `json:"recoveries,omitempty"`
	// Workers maps to WithWorkers.
	Workers int `json:"workers,omitempty"`
	// POR maps to WithPOR.
	POR bool `json:"por,omitempty"`
	// Cache maps to WithStateCache.
	Cache bool `json:"cache,omitempty"`
	// Batch maps to WithBatchExplore.
	Batch bool `json:"batch,omitempty"`
	// Replay maps to WithReplayExecution.
	Replay bool `json:"replay,omitempty"`
	// Sample, with Schedules and D, maps to WithSample(Schedules, D):
	// probabilistic sampling instead of exhaustive enumeration.
	Sample bool `json:"sample,omitempty"`
	// Schedules is WithSample's schedule budget.
	Schedules int `json:"schedules,omitempty"`
	// D is WithSample's PCT priority-change-point count.
	D int `json:"d,omitempty"`
	// Walk maps to WithSampleWalk.
	Walk bool `json:"walk,omitempty"`
	// Seed maps to WithSeed (0: keep the default seed 1). A literal
	// seed 0 is not expressible through a Spec, and never needs to be:
	// a Report.FailingSeed worth replaying is Seed+index of a run whose
	// Seed was nonzero under this very mapping.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMs maps to WithTimeout: the wall-clock budget in
	// milliseconds (0: none).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Options maps the spec onto the equivalent Checker options, in a fixed
// order. Object, environment and properties are deliberately absent:
// they are code, supplied by the caller (for slxd, by the target
// registry) alongside these options.
func (s Spec) Options() []Option {
	var opts []Option
	if s.Procs > 0 {
		opts = append(opts, WithProcs(s.Procs))
	}
	if s.Depth > 0 {
		opts = append(opts, WithDepth(s.Depth))
	}
	if s.Crashes > 0 {
		opts = append(opts, WithCrashes(s.Crashes))
	}
	if s.Recoveries != 0 {
		// Negative values are applied, not skipped: they must reach
		// ValidateExplore and be rejected with the recoveries message.
		opts = append(opts, WithRecoveries(s.Recoveries))
	}
	if s.Workers != 0 {
		// Negative values are applied, not skipped: they must reach
		// ValidateExplore and be rejected with the workers message, not
		// silently explore sequentially.
		opts = append(opts, WithWorkers(s.Workers))
	}
	if s.POR {
		opts = append(opts, WithPOR())
	}
	if s.Cache {
		opts = append(opts, WithStateCache())
	}
	if s.Batch {
		opts = append(opts, WithBatchExplore())
	}
	if s.Replay {
		opts = append(opts, WithReplayExecution())
	}
	if s.Sample {
		opts = append(opts, WithSample(s.Schedules, s.D))
	}
	if s.Walk {
		opts = append(opts, WithSampleWalk())
	}
	if s.Seed != 0 {
		opts = append(opts, WithSeed(s.Seed))
	}
	if s.TimeoutMs > 0 {
		opts = append(opts, WithTimeout(time.Duration(s.TimeoutMs)*time.Millisecond))
	}
	return opts
}
