package plane_test

import (
	"testing"

	"repro/slx/adversary"
	"repro/slx/plane"
)

// TestPlaneLattice checks the (l,k) lattice enumeration: 1 <= l <= k <= n.
func TestPlaneLattice(t *testing.T) {
	pts := plane.Plane(3)
	want := 6 // (1,1) (1,2) (1,3) (2,2) (2,3) (3,3)
	if len(pts) != want {
		t.Fatalf("Plane(3) has %d points, want %d: %v", len(pts), want, pts)
	}
	for _, p := range pts {
		if p.L < 1 || p.L > p.K || p.K > 3 {
			t.Errorf("invalid lattice point %v", p)
		}
	}
}

// TestGmaxEmptyForConsensus checks Corollary 4.5 through the facade:
// the adversary sets F1 and F2 are disjoint, so G_max is empty — no
// weakest liveness property is excluded by consensus safety.
func TestGmaxEmptyForConsensus(t *testing.T) {
	f1 := plane.NewHistorySet("F1", adversary.ConsensusF1(0, 1)...)
	f2 := plane.NewHistorySet("F2", adversary.ConsensusF2(0, 1)...)
	if f1.Len() == 0 || f2.Len() == 0 {
		t.Fatalf("empty history sets: |F1|=%d |F2|=%d", f1.Len(), f2.Len())
	}
	if n := plane.Intersect(f1, f2).Len(); n != 0 {
		t.Errorf("F1∩F2 has %d histories, want 0", n)
	}
	if g := plane.Gmax(f1, f2); !g.Empty() {
		t.Errorf("G_max has %d histories, want empty", g.Len())
	}
}
