// Package plane is the public facade over the exclusion engine
// (internal/core): the (l,k)-freedom lattice and its classification
// against running implementations (Figure 1), adversary history sets and
// G_max, the finite-model verification of Theorem 4.4, Theorem 4.9 over
// the trivial implementations, and the Section 6 families.
package plane

import (
	"repro/internal/core"
	"repro/slx"
	"repro/slx/hist"
)

// LKPoint is a point (l,k) of the (l,k)-freedom lattice, 1 <= l <= k.
type LKPoint = core.LKPoint

// PointClass classifies a lattice point: White (implementable alongside
// the safety property) or Black (excluded).
type PointClass = core.PointClass

// Point classes.
const (
	White = core.White
	Black = core.Black
)

// PointInfo carries a classified point and its evidence.
type PointInfo = core.PointInfo

// PlaneClassification is a fully classified (l,k) plane.
type PlaneClassification = core.PlaneClassification

// Battery is a suite of executions used as classification evidence.
type Battery = core.Battery

// BatteryRun is one labelled execution of a battery.
type BatteryRun = core.BatteryRun

// Plane enumerates the valid (l,k) points for n processes.
func Plane(n int) []LKPoint { return core.Plane(n) }

// ClassifyPlane classifies every point against the batteries.
func ClassifyPlane(n int, safetyName string, good slx.Good, batteries []*Battery) *PlaneClassification {
	return core.ClassifyPlane(n, safetyName, good, batteries)
}

// ConsensusBattery builds the consensus evidence battery for n
// processes.
func ConsensusBattery(n int) (*Battery, error) { return core.ConsensusBattery(n) }

// TMOpacityBatteries builds the TM opacity evidence batteries.
func TMOpacityBatteries(n int) []*Battery { return core.TMOpacityBatteries(n) }

// TMPropertySBattery builds the Section 5.3 property-S battery.
func TMPropertySBattery(n int) *Battery { return core.TMPropertySBattery(n) }

// Figure1a reproduces Figure 1(a): the plane for consensus from
// registers (Theorem 5.2).
func Figure1a(n int) (*PlaneClassification, error) { return core.Figure1a(n) }

// Figure1b reproduces Figure 1(b): the plane for TM with opacity
// (Theorem 5.3).
func Figure1b(n int) *PlaneClassification { return core.Figure1b(n) }

// Section53Plane reproduces the Section 5.3 counterexample plane for
// property S.
func Section53Plane(n int) *PlaneClassification { return core.Section53Plane(n) }

// HistorySet is a finite set of histories keyed structurally (the
// paper's adversary sets F).
type HistorySet = core.HistorySet

// NewHistorySet builds a named set from histories.
func NewHistorySet(name string, hs ...hist.History) *HistorySet {
	return core.NewHistorySet(name, hs...)
}

// Intersect intersects two history sets.
func Intersect(a, b *HistorySet) *HistorySet { return core.Intersect(a, b) }

// Gmax computes the paper's G_max candidate from adversary sets.
func Gmax(sets ...*HistorySet) *HistorySet { return core.Gmax(sets...) }

// FiniteModel is a brute-force-checkable instance of the Section 4
// framework for verifying Theorem 4.4.
type FiniteModel = core.FiniteModel

// Theorem44Report is the outcome of checking Theorem 4.4 on a model.
type Theorem44Report = core.Theorem44Report

// ModelWithWeakest is a finite model in which a weakest excluding
// liveness property exists.
func ModelWithWeakest() *FiniteModel { return core.ModelWithWeakest() }

// ModelWithoutWeakest is a corollary-shaped model with no weakest
// excluding liveness property.
func ModelWithoutWeakest() *FiniteModel { return core.ModelWithoutWeakest() }

// Theorem49Report is the outcome of verifying Theorem 4.9 over the
// trivial implementations I_t and I_b.
type Theorem49Report = core.Theorem49Report

// CheckTheorem49 verifies Theorem 4.9 on the composed automata to the
// given depth.
func CheckTheorem49(depth int) (*Theorem49Report, error) { return core.CheckTheorem49(depth) }

// NXClassification classifies the totally ordered (n,x)-liveness family
// of Section 6.
type NXClassification = core.NXClassification

// NXConsensus classifies (n,x)-liveness against consensus safety.
func NXConsensus(n int) (*NXClassification, error) { return core.NXConsensus(n) }

// PopCount counts the members of a finite-model liveness property.
func PopCount(set uint32) int { return core.PopCount(set) }

// LmaxFiniteOneShot is the L_max predicate of the Theorem 4.9 setting on
// finite one-shot histories.
func LmaxFiniteOneShot(h hist.History) bool { return core.LmaxFiniteOneShot(h) }
