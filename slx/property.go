package slx

import (
	"fmt"
	"sort"

	"repro/slx/hist"
	"repro/slx/run"
)

// PropertyKind distinguishes the paper's two property classes.
type PropertyKind int

// Property kinds.
const (
	// Safety: a prefix-closed, limit-closed set of histories (Section
	// 3.1). Safety properties are judged on the history alone and may be
	// checked on every prefix during exhaustive exploration.
	Safety PropertyKind = iota + 1
	// Liveness: a guarantee over fair executions (Section 3.2), judged on
	// the full execution under the bounded tail-window semantics.
	Liveness
)

// String names the kind.
func (k PropertyKind) String() string {
	switch k {
	case Safety:
		return "safety"
	case Liveness:
		return "liveness"
	default:
		return fmt.Sprintf("PropertyKind(%d)", int(k))
	}
}

// Verdict is the unified outcome of checking one property on one
// execution.
type Verdict struct {
	// Property is the property name.
	Property string
	// Kind is the property's kind.
	Kind PropertyKind
	// Holds reports whether the execution satisfies the property.
	Holds bool
	// Reason is a human-readable explanation of the verdict.
	Reason string
	// Witness, set when the property fails, is the schedule of the
	// violating execution. A schedule determines a run together with the
	// environment, so feeding it to Checker.Replay reproduces the
	// violation deterministically whenever the checker's environment
	// matches the one that produced the run: Check and Replay runs always
	// match by construction, and adversaries that script their own inputs
	// expose theirs via slx.EnvScripter.
	Witness []run.Decision
}

// String renders "name: PASS" or "name: FAIL (reason)".
func (v Verdict) String() string {
	if v.Holds {
		return fmt.Sprintf("%s: PASS", v.Property)
	}
	return fmt.Sprintf("%s: FAIL (%s)", v.Property, v.Reason)
}

// Property is the unified interface over safety and liveness properties:
// spec + execution → verdict with witness. Implementations must be safe
// for concurrent Check calls (exhaustive exploration checks prefixes from
// worker goroutines).
type Property interface {
	// Name identifies the property in reports.
	Name() string
	// Kind says whether this is a safety or a liveness property.
	Kind() PropertyKind
	// Check judges the execution and returns the verdict.
	Check(e *Execution) Verdict
	// Spawn returns a fresh incremental Monitor at the empty history, or
	// nil when the property is batch-only. Liveness properties return
	// nil — liveness is a statement about full fair executions, not
	// prefixes, so there is no event-incremental verdict to maintain.
	// Explore falls back to a BatchMonitor over Check for safety
	// properties that return nil.
	Spawn() Monitor
}

// funcProperty implements Property over closures.
type funcProperty struct {
	name    string
	kind    PropertyKind
	holds   func(e *Execution) bool
	explain func(e *Execution) string // optional; used on failure
	spawn   func() Monitor            // optional; nil for batch-only properties
}

// Name implements Property.
func (p *funcProperty) Name() string { return p.name }

// Kind implements Property.
func (p *funcProperty) Kind() PropertyKind { return p.kind }

// Spawn implements Property.
func (p *funcProperty) Spawn() Monitor {
	if p.spawn == nil {
		return nil
	}
	return p.spawn()
}

// Check implements Property.
func (p *funcProperty) Check(e *Execution) Verdict {
	v := Verdict{Property: p.name, Kind: p.kind, Holds: p.holds(e)}
	if v.Holds {
		v.Reason = fmt.Sprintf("holds on the %d-event history (%d steps)", len(e.H), e.Steps)
		return v
	}
	v.Witness = append([]run.Decision(nil), e.Schedule...)
	if p.explain != nil {
		v.Reason = p.explain(e)
	} else {
		v.Reason = fmt.Sprintf("violated on the %d-event history (%d steps)", len(e.H), e.Steps)
	}
	return v
}

// SafetyFunc builds a safety Property from a history predicate. holds
// must be prefix-monotone (once false on a prefix, false on every
// extension), which every checker in slx/check satisfies; the failure
// reason pinpoints the shortest violating prefix by binary search under
// that monotonicity.
func SafetyFunc(name string, holds func(h hist.History) bool) Property {
	return &funcProperty{
		name:  name,
		kind:  Safety,
		holds: func(e *Execution) bool { return holds(e.H) },
		explain: func(e *Execution) string {
			n := sort.Search(len(e.H), func(n int) bool { return !holds(e.H.Prefix(n + 1)) }) + 1
			if n > len(e.H) || n < 1 {
				return fmt.Sprintf("violated on the %d-event history", len(e.H))
			}
			return fmt.Sprintf("violated at event %d/%d: %s", n, len(e.H), e.H[n-1])
		},
		spawn: func() Monitor { return BatchMonitor(name, holds) },
	}
}

// LivenessFunc builds a liveness Property from an execution predicate.
// The optional explain function produces the failure reason; the default
// reports the correct/stepping sets of the tail window.
func LivenessFunc(name string, holds func(e *Execution) bool, explain ...func(e *Execution) string) Property {
	p := &funcProperty{name: name, kind: Liveness, holds: holds}
	if len(explain) > 0 && explain[0] != nil {
		p.explain = explain[0]
	} else {
		p.explain = func(e *Execution) string {
			return fmt.Sprintf("violated: correct=%v steppers=%v over the tail window of the %d-step run",
				e.Correct(), e.Steppers(), e.Steps)
		}
	}
	return p
}
