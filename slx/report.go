package slx

import (
	"fmt"
	"strings"

	"repro/slx/run"
)

// Mode says which Checker entry point produced a Report.
type Mode int

// Modes.
const (
	// ModeCheck: one scheduled run (Checker.Check).
	ModeCheck Mode = iota + 1
	// ModeReplay: a replayed schedule (Checker.Replay).
	ModeReplay
	// ModeAdversary: an attack strategy's run (Checker.Adversary).
	ModeAdversary
	// ModeExplore: exhaustive bounded exploration (Checker.Explore).
	ModeExplore
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCheck:
		return "check"
	case ModeReplay:
		return "replay"
	case ModeAdversary:
		return "adversary"
	case ModeExplore:
		return "explore"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Report is the unified outcome of every Checker entry point.
type Report struct {
	// Mode says how the report was produced.
	Mode Mode
	// Adversary names the strategy when Mode is ModeAdversary.
	Adversary string
	// Execution is the judged execution. For a clean exploration it is
	// nil (no single run is distinguished); for a violated exploration it
	// is the violating prefix's execution.
	Execution *Execution
	// Schedule is the replayable schedule of Execution, nil when
	// Execution is.
	Schedule []run.Decision
	// Verdicts holds one entry per checked property (exploration stops
	// at the first violation and reports only it).
	Verdicts []Verdict
	// Prefixes and SimSteps are exploration statistics: histories
	// checked, and the simulator steps that advanced exploration into
	// them. Under incremental execution (the default for objects with
	// the run.Snapshottable hook) SimSteps is about one step per
	// explored prefix; under replay execution (WithReplayExecution, or
	// objects without the hook) it is the total steps across all
	// from-root replays.
	Prefixes, SimSteps int
	// Resims counts simulator steps spent re-establishing already
	// visited configurations: snapshot-restore rebuilds and stolen-
	// subtree seed replays under incremental execution, the re-executed
	// prefix portion of every replay (also counted in SimSteps) under
	// replay execution.
	Resims int
	// Pruned counts the subtrees partial-order reduction skipped during
	// an exploration (0 unless WithPOR).
	Pruned int
	// CacheHits counts the subtrees skipped because their root's
	// configuration was already fully explored (0 unless
	// WithStateCache).
	CacheHits int
	// Workers is the number of exploration workers actually used
	// (WithWorkers; counts below 1 are rejected by validation). Zero
	// outside ModeExplore.
	Workers int
	// EventScans counts the events fed to the property layer during an
	// exploration: one per (event, monitor) pair on the incremental path,
	// len(history)·len(properties) per prefix on the batch path. It is
	// the before/after measure of the monitor redesign. In sampling mode
	// it is counted over the deterministic merged prefix of schedules
	// (work discarded past a violation or cancellation is excluded, so
	// the number is worker-count independent).
	EventScans int
	// Sampled marks a sampling-mode exploration (WithSample): Prefixes
	// is 0 and the three fields below are populated instead.
	Sampled bool
	// Schedules counts the sampled schedules merged into the report: on
	// a violation, the failing schedule and every schedule before it in
	// index order; on cancellation, the completed prefix.
	Schedules int
	// DistinctStates counts the distinct terminal-state fingerprints the
	// merged schedules reached — the sampling coverage measure (0 when
	// the object has no run.Fingerprintable hook).
	DistinctStates int
	// FailingSeed is the seed of the failing schedule when a sampled
	// violation was found (0 otherwise): WithSeed(FailingSeed) with
	// WithSample(1, d) re-derives exactly its schedule.
	FailingSeed int64
	// Interrupted marks a report cut short by context cancellation or a
	// WithTimeout expiry before the exploration finished: the
	// statistics cover the work completed before the cut (merged
	// schedules in sampling mode, explored prefixes in exhaustive
	// mode), and there are no verdicts — a partial exploration proves
	// nothing. Explore returns such a partial report together with the
	// context error.
	Interrupted bool
}

// OK reports whether every verdict holds.
func (r *Report) OK() bool {
	for _, v := range r.Verdicts {
		if !v.Holds {
			return false
		}
	}
	return true
}

// Failures returns the verdicts that do not hold.
func (r *Report) Failures() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if !v.Holds {
			out = append(out, v)
		}
	}
	return out
}

// Verdict returns the verdict for the named property.
func (r *Report) Verdict(name string) (Verdict, bool) {
	for _, v := range r.Verdicts {
		if v.Property == name {
			return v, true
		}
	}
	return Verdict{}, false
}

// Witness returns the witness schedule of the first failing verdict, nil
// when every verdict holds.
func (r *Report) Witness() []run.Decision {
	for _, v := range r.Verdicts {
		if !v.Holds {
			return v.Witness
		}
	}
	return nil
}

// String renders a one-paragraph human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	switch r.Mode {
	case ModeExplore:
		if r.Sampled {
			fmt.Fprintf(&b, "explore (sampled): %d schedules, %d distinct states, %d simulator steps, %d property-event scans",
				r.Schedules, r.DistinctStates, r.SimSteps, r.EventScans)
			if r.Workers > 1 {
				fmt.Fprintf(&b, ", %d workers", r.Workers)
			}
			if r.FailingSeed != 0 {
				fmt.Fprintf(&b, ", failing seed %d", r.FailingSeed)
			}
			if r.Interrupted {
				b.WriteString(", interrupted")
			}
			b.WriteString("\n")
			for _, v := range r.Verdicts {
				fmt.Fprintf(&b, "  %s\n", v)
			}
			return b.String()
		}
		fmt.Fprintf(&b, "explore: %d prefixes, %d simulator steps, %d property-event scans", r.Prefixes, r.SimSteps, r.EventScans)
		if r.Resims > 0 {
			fmt.Fprintf(&b, ", %d resim steps", r.Resims)
		}
		if r.Pruned > 0 {
			fmt.Fprintf(&b, ", %d subtrees pruned", r.Pruned)
		}
		if r.CacheHits > 0 {
			fmt.Fprintf(&b, ", %d state-cache hits", r.CacheHits)
		}
		if r.Workers > 1 {
			fmt.Fprintf(&b, ", %d workers", r.Workers)
		}
		if r.Interrupted {
			b.WriteString(", interrupted")
		}
		b.WriteString("\n")
	case ModeAdversary:
		fmt.Fprintf(&b, "adversary %s: %d-step run, %d events\n", r.Adversary, r.Execution.Steps, len(r.Execution.H))
	default:
		fmt.Fprintf(&b, "%s: %d-step run, %d events\n", r.Mode, r.Execution.Steps, len(r.Execution.H))
	}
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}
