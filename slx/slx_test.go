package slx_test

import (
	"context"
	"testing"

	"repro/slx"
	"repro/slx/adversary"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/run"
)

// commitAdoptChecker configures the canonical two-process commit-adopt
// consensus under the given options, with an environment that
// re-proposes 0 and 1 forever.
func commitAdoptChecker(opts ...slx.Option) *slx.Checker {
	base := []slx.Option{
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithEnv(func() run.Environment {
			return consensus.ProposeForever(map[int]hist.Value{1: 0, 2: 1})
		}),
		slx.WithProcs(2),
	}
	return slx.New(append(base, opts...)...)
}

// TestCheckRoundRobinUnifiedVerdicts runs commit-adopt consensus under
// fair round-robin and judges one safety and one liveness property
// through the same Checker.Check call: the lock-step livelock keeps
// agreement+validity intact while violating (1,2)-freedom.
func TestCheckRoundRobinUnifiedVerdicts(t *testing.T) {
	c := commitAdoptChecker(slx.WithMaxSteps(600))
	rep, err := c.Check(
		check.AgreementValidity(),
		check.LK(1, 2, nil),
		check.LK(1, 1, nil),
		check.Fair(),
	)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if rep.Mode != slx.ModeCheck {
		t.Fatalf("mode = %v, want check", rep.Mode)
	}

	av, ok := rep.Verdict("agreement+validity")
	if !ok || !av.Holds || av.Kind != slx.Safety {
		t.Fatalf("agreement+validity verdict = %+v, want holding safety verdict", av)
	}
	lk12, ok := rep.Verdict("(1,2)-freedom")
	if !ok || lk12.Holds || lk12.Kind != slx.Liveness {
		t.Fatalf("(1,2)-freedom verdict = %+v, want failing liveness verdict", lk12)
	}
	if lk12.Reason == "" {
		t.Error("failing verdict must carry a reason")
	}
	if len(lk12.Witness) != 600 {
		t.Errorf("witness length = %d, want the full 600-decision schedule", len(lk12.Witness))
	}
	if lk11, _ := rep.Verdict("(1,1)-freedom"); !lk11.Holds {
		t.Error("(1,1)-freedom should hold vacuously (two steppers)")
	}
	if fair, _ := rep.Verdict("fair"); !fair.Holds {
		t.Error("round-robin schedule must be fair")
	}

	// The witness replays deterministically: identical history, identical
	// verdicts, run after run.
	first, err := c.Replay(lk12.Witness, check.AgreementValidity(), check.LK(1, 2, nil))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	second, err := c.Replay(lk12.Witness, check.AgreementValidity(), check.LK(1, 2, nil))
	if err != nil {
		t.Fatalf("Replay (second): %v", err)
	}
	for _, replayed := range []*slx.Report{first, second} {
		if replayed.Mode != slx.ModeReplay {
			t.Fatalf("mode = %v, want replay", replayed.Mode)
		}
		if !replayed.Execution.H.Equal(rep.Execution.H) {
			t.Errorf("replayed history %s differs from original %s", replayed.Execution.H, rep.Execution.H)
		}
		if v, _ := replayed.Verdict("(1,2)-freedom"); v.Holds {
			t.Error("replay must reproduce the (1,2)-freedom violation")
		}
		if v, _ := replayed.Verdict("agreement+validity"); !v.Holds {
			t.Error("replay must reproduce intact safety")
		}
	}
	if !first.Execution.H.Equal(second.Execution.H) {
		t.Error("two replays of the same witness must produce identical histories")
	}
}

// TestAdversaryBivalenceThroughChecker drives the bivalence adversary
// through Checker.Adversary and verifies the unified verdicts plus
// witness-schedule replay determinism, using the strategy's scripted
// environment (slx.EnvScripter) for the replay.
func TestAdversaryBivalenceThroughChecker(t *testing.T) {
	strat := adversary.NewBivalenceStrategy(0, 1)
	var _ slx.EnvScripter = strat
	c := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithEnv(strat.ScriptedEnv()),
		slx.WithProcs(2),
		slx.WithMaxSteps(80),
	)
	rep, err := c.Adversary(strat,
		check.AgreementValidity(),
		check.LK(1, 2, nil),
	)
	if err != nil {
		t.Fatalf("Adversary: %v", err)
	}
	if rep.Mode != slx.ModeAdversary || rep.Adversary != "bivalence" {
		t.Fatalf("mode/adversary = %v/%q", rep.Mode, rep.Adversary)
	}
	if strat.Probes() == 0 {
		t.Error("the adversary must have probed solo continuations")
	}
	if av, _ := rep.Verdict("agreement+validity"); !av.Holds {
		t.Error("the adversary must win on liveness, not safety")
	}
	lk12, _ := rep.Verdict("(1,2)-freedom")
	if lk12.Holds {
		t.Fatal("the fair non-deciding schedule must violate (1,2)-freedom")
	}
	if len(lk12.Witness) != 80 {
		t.Fatalf("witness length = %d, want 80", len(lk12.Witness))
	}
	if !rep.Execution.Fair() {
		t.Error("the adversary's schedule must be fair")
	}

	// Replaying the witness through the checker reproduces the attack
	// without the adversary: same history, same verdicts.
	replayed, err := c.Replay(lk12.Witness, check.AgreementValidity(), check.LK(1, 2, nil))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !replayed.Execution.H.Equal(rep.Execution.H) {
		t.Errorf("replayed history %s differs from the adversary's %s",
			replayed.Execution.H, rep.Execution.H)
	}
	if v, _ := replayed.Verdict("(1,2)-freedom"); v.Holds {
		t.Error("witness replay must reproduce the liveness violation")
	}
}

// TestExploreCleanAndViolating exercises Checker.Explore both ways: a
// correct implementation is clean to depth, and an agreement-violating
// one yields a failing verdict whose witness replays to the violation.
func TestExploreCleanAndViolating(t *testing.T) {
	proposeOnce := func() run.Environment {
		return consensus.ProposeOnce(map[int]hist.Value{1: 0, 2: 1})
	}
	clean, err := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithEnv(proposeOnce),
		slx.WithProcs(2),
		slx.WithDepth(7),
	).Explore(check.AgreementValidity())
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if !clean.OK() || clean.Prefixes == 0 {
		t.Fatalf("clean exploration: OK=%v prefixes=%d", clean.OK(), clean.Prefixes)
	}

	bad := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewDecideOwn(2) }),
		slx.WithEnv(proposeOnce),
		slx.WithProcs(2),
		slx.WithDepth(8),
	)
	rep, err := bad.Explore(check.AgreementValidity())
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if rep.OK() {
		t.Fatal("decide-own must violate agreement on some schedule")
	}
	vio := rep.Failures()[0]
	if vio.Witness == nil {
		t.Fatal("exploration violation must carry a witness schedule")
	}
	replayed, err := bad.Replay(vio.Witness, check.AgreementValidity())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if v, _ := replayed.Verdict("agreement+validity"); v.Holds {
		t.Errorf("witness %v must replay to the agreement violation (history %s)",
			vio.Witness, replayed.Execution.H)
	}
}

// TestExploreRejectsLiveness: liveness is a statement about full fair
// executions, so exhaustive prefix exploration must refuse it.
func TestExploreRejectsLiveness(t *testing.T) {
	c := commitAdoptChecker(slx.WithDepth(3))
	if _, err := c.Explore(check.LK(1, 2, nil)); err == nil {
		t.Fatal("Explore must reject liveness properties")
	}
}

// TestWithContextCancellation: a cancelled context stops the run and
// surfaces ctx.Err().
func TestWithContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := commitAdoptChecker(slx.WithMaxSteps(600), slx.WithContext(ctx))
	if _, err := c.Check(check.AgreementValidity()); err != context.Canceled {
		t.Fatalf("Check under cancelled context: err = %v, want context.Canceled", err)
	}
	if _, err := c.Explore(check.AgreementValidity()); err != context.Canceled {
		t.Fatalf("Explore under cancelled context: err = %v, want context.Canceled", err)
	}
}

// TestConfigurationErrors: the checker names the missing option.
func TestConfigurationErrors(t *testing.T) {
	if _, err := slx.New().Check(); err == nil {
		t.Error("Check without WithObject must fail")
	}
	if _, err := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
	).Check(); err == nil {
		t.Error("Check without WithEnv must fail")
	}
}
