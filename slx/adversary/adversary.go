// Package adversary is the public facade over the paper's attack
// strategies (internal/adversary), exposed two ways: the raw strategy
// types with their full APIs (probe counts, loop counters), and
// slx.Adversary wrappers (BivalenceStrategy, TMStarveStrategy,
// S3Strategy) that plug directly into Checker.Adversary and record the
// last attack for inspection.
package adversary

import (
	"fmt"

	iadv "repro/internal/adversary"
	"repro/slx"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/run"
)

// Raw strategy types.

// Bivalence is the FLP/Chor-Israeli-Li adversary: it maintains a
// bivalent schedule prefix by deterministic solo-probe replay, producing
// an arbitrarily long fair schedule on which nobody decides.
type Bivalence = iadv.Bivalence

// BivalenceResult is the outcome of a Bivalence attack.
type BivalenceResult = iadv.Result

// TMStarve is the Section 4.1 strategy against opaque TMs: the victim is
// forever aborted by the helper's interfering commits.
type TMStarve = iadv.TMStarve

// NewTMStarve creates the strategy with the given victim and helper.
func NewTMStarve(victim, helper int) *TMStarve { return iadv.NewTMStarve(victim, helper) }

// S3 is the Section 5.3 adversary: n processes repeatedly start
// concurrently then request commits concurrently; against property S
// every transaction aborts.
type S3 = iadv.S3

// NewS3 creates the strategy for n processes.
func NewS3(n int) *S3 { return iadv.NewS3(n) }

// Finite adversary sets for the G_max corollaries.

// ConsensusF1 is the paper's F1: finite fair histories in which p1 is
// starved while p2 decides.
func ConsensusF1(v, vPrime hist.Value) []hist.History { return iadv.ConsensusF1(v, vPrime) }

// ConsensusF2 is F1 with the process roles swapped.
func ConsensusF2(v, vPrime hist.Value) []hist.History { return iadv.ConsensusF2(v, vPrime) }

// KSetF1 is the k-set agreement analogue of ConsensusF1.
func KSetF1(k int, values []hist.Value) []hist.History { return iadv.KSetF1(k, values) }

// KSetF2 is the k-set agreement analogue of ConsensusF2.
func KSetF2(k int, values []hist.Value) []hist.History { return iadv.KSetF2(k, values) }

// SwapProcs exchanges the roles of processes a and b throughout h.
func SwapProcs(h hist.History, a, b int) hist.History { return iadv.SwapProcs(h, a, b) }

// Checker strategies (slx.Adversary implementations).

// BivalenceStrategy adapts Bivalence to slx.Adversary. The checker's
// MaxSteps is the target schedule length; Procs must be 2. The strategy
// scripts its own proposal environment (v1 and v2 must differ).
type BivalenceStrategy struct {
	// V1, V2 are the proposals of p1 and p2.
	V1, V2 hist.Value
	// ProbeSlack bounds each solo probe (0 means the Bivalence default).
	ProbeSlack int

	last *BivalenceResult
}

// NewBivalenceStrategy creates the strategy.
func NewBivalenceStrategy(v1, v2 hist.Value) *BivalenceStrategy {
	return &BivalenceStrategy{V1: v1, V2: v2}
}

// Name implements slx.Adversary.
func (b *BivalenceStrategy) Name() string { return "bivalence" }

// Attack implements slx.Adversary.
func (b *BivalenceStrategy) Attack(cfg slx.AttackConfig) (*run.Result, error) {
	if cfg.Procs != 2 {
		return nil, fmt.Errorf("bivalence strategy needs exactly 2 processes, checker has %d", cfg.Procs)
	}
	adv := &Bivalence{NewObject: cfg.NewObject, V1: b.V1, V2: b.V2, ProbeSlack: b.ProbeSlack}
	res, err := adv.Run(cfg.MaxSteps)
	if err != nil {
		return nil, err
	}
	b.last = res
	return res.Run, nil
}

// Probes returns the solo-probe replays of the last attack.
func (b *BivalenceStrategy) Probes() int {
	if b.last == nil {
		return 0
	}
	return b.last.Probes
}

// ScriptedEnv implements slx.EnvScripter: both processes re-propose
// their values forever, exactly the environment the attack runs under.
// Configure a checker with it (WithEnv) to Replay this strategy's
// witness schedules.
func (b *BivalenceStrategy) ScriptedEnv() func() run.Environment {
	v1, v2 := b.V1, b.V2
	return func() run.Environment {
		return run.RepeatPerProc(map[int]run.Invocation{
			1: {Op: consensus.Propose, Arg: v1},
			2: {Op: consensus.Propose, Arg: v2},
		})
	}
}

// TMStarveStrategy adapts TMStarve to slx.Adversary.
type TMStarveStrategy struct {
	// Victim and Helper are the starved and interfering process ids.
	Victim, Helper int

	last *TMStarve
}

// NewTMStarveStrategy creates the strategy.
func NewTMStarveStrategy(victim, helper int) *TMStarveStrategy {
	return &TMStarveStrategy{Victim: victim, Helper: helper}
}

// Name implements slx.Adversary.
func (t *TMStarveStrategy) Name() string { return "tm-starve" }

// Attack implements slx.Adversary.
func (t *TMStarveStrategy) Attack(cfg slx.AttackConfig) (*run.Result, error) {
	adv := iadv.NewTMStarve(t.Victim, t.Helper)
	res := adv.Attack(cfg.NewObject(), cfg.Procs, cfg.MaxSteps)
	t.last = adv
	return res, nil
}

// Loops returns the starvation cycles completed in the last attack.
func (t *TMStarveStrategy) Loops() int {
	if t.last == nil {
		return 0
	}
	return t.last.Loops()
}

// VictimCommitted reports whether the victim ever committed in the last
// attack (it must not, for the strategy to win).
func (t *TMStarveStrategy) VictimCommitted() bool {
	return t.last != nil && t.last.VictimCommitted()
}

// S3Strategy adapts S3 to slx.Adversary; the checker's Procs sets n.
type S3Strategy struct {
	last *S3
}

// NewS3Strategy creates the strategy.
func NewS3Strategy() *S3Strategy { return &S3Strategy{} }

// Name implements slx.Adversary.
func (s *S3Strategy) Name() string { return "s3-lockstep" }

// Attack implements slx.Adversary.
func (s *S3Strategy) Attack(cfg slx.AttackConfig) (*run.Result, error) {
	adv := iadv.NewS3(cfg.Procs)
	res := adv.Attack(cfg.NewObject(), cfg.MaxSteps)
	s.last = adv
	return res, nil
}

// Rounds returns the all-aborted rounds of the last attack.
func (s *S3Strategy) Rounds() int {
	if s.last == nil {
		return 0
	}
	return s.last.Rounds()
}

// Committed reports whether any transaction committed in the last
// attack.
func (s *S3Strategy) Committed() bool { return s.last != nil && s.last.Committed() }
