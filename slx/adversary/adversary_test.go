package adversary_test

import (
	"testing"

	"repro/slx"
	"repro/slx/adversary"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/run"
)

// TestConsensusAdversarySets checks the finite F1/F2 sets of Corollary
// 4.5 through the facade: starvation with the roles swapped, disjoint.
func TestConsensusAdversarySets(t *testing.T) {
	f1 := adversary.ConsensusF1(0, 1)
	f2 := adversary.ConsensusF2(0, 1)
	if len(f1) == 0 || len(f2) == 0 {
		t.Fatalf("empty adversary sets: |F1|=%d |F2|=%d", len(f1), len(f2))
	}
	if len(f1) != len(f2) {
		t.Errorf("|F1|=%d != |F2|=%d (role swap must preserve size)", len(f1), len(f2))
	}
	// SwapProcs maps each F1 history to its F2 counterpart.
	swapped := adversary.SwapProcs(f1[0], 1, 2)
	found := false
	for _, h := range f2 {
		if h.String() == swapped.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("swapped F1 history %s not in F2", swapped)
	}
}

// TestBivalenceStrategyDefeatsRegisterConsensus runs the FLP/CIL
// adversary through Checker.Adversary: it constructs a fair non-deciding
// schedule, so (1,2)-freedom fails while safety holds.
func TestBivalenceStrategyDefeatsRegisterConsensus(t *testing.T) {
	strat := adversary.NewBivalenceStrategy(0, 1)
	rep, err := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithProcs(2),
		slx.WithMaxSteps(40),
	).Adversary(strat, check.LK(1, 2, nil), check.AgreementValidity())
	if err != nil {
		t.Fatalf("adversary: %v", err)
	}
	if strat.Probes() == 0 {
		t.Error("bivalence adversary made no solo probes")
	}
	lk, ok := rep.Verdict("(1,2)-freedom")
	if !ok || lk.Holds {
		t.Errorf("(1,2)-freedom must fail on the non-deciding schedule (found=%v holds=%v)", ok, lk.Holds)
	}
	av, ok := rep.Verdict("agreement+validity")
	if !ok || !av.Holds {
		t.Errorf("safety must hold on the adversarial run (found=%v holds=%v)", ok, av.Holds)
	}
	// The scripted environment replays the witness deterministically.
	replayer := slx.New(
		slx.WithObject(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
		slx.WithProcs(2),
		slx.WithEnv(strat.ScriptedEnv()),
	)
	rep2, err := replayer.Replay(rep.Schedule, check.AgreementValidity())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep2.Execution.H.String() != rep.Execution.H.String() {
		t.Error("replaying the attack schedule produced a different history")
	}
}
