package slx

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explore"
	"repro/internal/history"
	"repro/internal/sample"
	"repro/slx/hist"
	"repro/slx/run"
)

// Checker is the single public entry point over the simulation and
// exploration engine: configure it once with functional options, then
// drive one scheduled run (Check), replay a recorded schedule (Replay),
// run an attack strategy (Adversary), or exhaustively explore every
// schedule to a depth (Explore). All four return the same Report type.
type Checker struct {
	newObject  func() run.Object
	newEnv     func() run.Environment
	newSched   func() run.Scheduler
	procs      int
	maxSteps   int
	depth      int
	crashes    int
	recoveries int
	workers    int
	window     int
	batch      bool
	por        bool
	cache      bool
	replay     bool
	sample     bool
	schedules  int
	sampleD    int
	walk       bool
	seed       int64
	timeout    time.Duration
	spawn      func(loop func()) bool
	visited    *VisitedTier
	ctx        context.Context
}

// Option configures a Checker.
type Option func(*Checker)

// WithObject sets the factory for the implementation under test. Each
// run gets a fresh instance (runs mutate objects). Required.
func WithObject(f func() run.Object) Option { return func(c *Checker) { c.newObject = f } }

// WithEnv sets the factory for the environment deciding invocations.
// Required by Check, Replay and Explore; adversaries bring their own.
func WithEnv(f func() run.Environment) Option { return func(c *Checker) { c.newEnv = f } }

// WithScheduler sets the factory for the scheduler driving Check runs
// (schedulers are stateful, hence a factory). Default: fair round-robin.
func WithScheduler(f func() run.Scheduler) Option { return func(c *Checker) { c.newSched = f } }

// WithProcs sets the number of processes n. Default: 2.
func WithProcs(n int) Option { return func(c *Checker) { c.procs = n } }

// WithMaxSteps bounds each run's granted steps (and an adversary's
// budget). Default: run.DefaultMaxSteps.
func WithMaxSteps(n int) Option { return func(c *Checker) { c.maxSteps = n } }

// WithDepth bounds the schedule length of Explore. Default: 8.
func WithDepth(n int) Option { return func(c *Checker) { c.depth = n } }

// WithCrashes lets Explore additionally branch on crashing each ready
// process, at most n times per schedule (idle and blocked processes
// take no further steps, so crashing them would only duplicate sibling
// subtrees). Default: 0 (no crash injection).
func WithCrashes(n int) Option { return func(c *Checker) { c.crashes = n } }

// WithRecoveries lets Explore additionally branch on recovering each
// crashed process, at most n times per schedule (in sampling mode:
// inject up to n recover decisions at uniformly chosen steps). A
// recovered process re-enters the ready set: its operation pending at
// the crash never responds, its volatile object state is gone (wiped at
// the crash through the run.Recoverable hook, when implemented), and it
// runs the object's recovery routine — if any — before consulting the
// environment again. Objects without the hook recover too, with all
// state durable and no routine. Only meaningful together with
// WithCrashes(>= 1): without crashes no process is ever recoverable.
// Default: 0 (crashes are permanent).
func WithRecoveries(n int) Option { return func(c *Checker) { c.recoveries = n } }

// WithWorkers explores with n concurrent workers under a bounded
// work-stealing scheduler: workers split sibling subtrees into
// stealable tasks and share the sleep-set precomputation and the
// WithStateCache visited set, while violations stay deterministic (the
// failure at the lexicographically least schedule prefix — the one
// sequential exploration reports — wins regardless of worker timing).
// Properties are then checked from multiple goroutines. Values below 1
// are rejected by Explore and ValidateExplore; Report.Workers records
// the count actually used. Default: 1.
func WithWorkers(n int) Option { return func(c *Checker) { c.workers = n } }

// WithWindow sets the liveness tail-window length in steps; 0 means half
// the run. Default: 0.
func WithWindow(n int) Option { return func(c *Checker) { c.window = n } }

// WithContext attaches a context: cancellation stops runs and
// explorations early, and the driving method returns ctx.Err().
func WithContext(ctx context.Context) Option { return func(c *Checker) { c.ctx = ctx } }

// WithTimeout bounds Explore's wall-clock time (both exhaustive and
// sampling mode): the budget is threaded into the engine as a context
// deadline, layered on top of any WithContext. When it expires, Explore
// returns the partial Report — statistics over the work completed
// before the cut, Interrupted set, no verdicts — together with the
// context error, exactly like an external cancellation. d <= 0 means no
// budget. This is the per-job wall-clock budget of slxd daemon jobs and
// the -timeout flag of one-shot CLI exploration.
func WithTimeout(d time.Duration) Option { return func(c *Checker) { c.timeout = d } }

// WithExecutor offers the extra worker loops of WithWorkers to an
// external executor instead of spawning goroutines: under exhaustive
// exploration the work-stealing scheduler's loops 1..n-1, under
// sampling the extra chunk-claiming lanes. The first loop always runs
// inline on the calling goroutine, so the exploration completes no
// matter what the executor does with the offers. offer returns whether
// it accepted the task; an accepted task must eventually be run (it
// exits promptly if no work remains by then), a declined one is simply
// never started, leaving the exploration correct but less parallel.
// This is how the slxd service shares one bounded worker pool across
// every job's sub-tasks — stolen subtrees and sample chunks run on
// whichever pool slots accept an offer — while reports stay identical
// to the in-process run. Default: nil (plain goroutines).
func WithExecutor(offer func(task func()) bool) Option {
	return func(c *Checker) { c.spawn = offer }
}

// VisitedTier is a state-cache tier that outlives one exploration: see
// WithVisitedTier.
type VisitedTier = explore.Visited

// NewVisitedTier creates an empty shareable visited-set tier.
func NewVisitedTier() *VisitedTier { return explore.NewVisited() }

// WithVisitedTier makes WithStateCache use the given shared tier
// instead of a private per-exploration visited set, so the states one
// exploration proves fully explored prune later explorations too (the
// slxd service keeps one tier per target). Sharing is sound only
// between checkers with identical object, environment and property
// configurations: entries carry their remaining depth/crash budgets and
// sleep sets, so differing WithDepth, WithCrashes or WithPOR settings
// compose through the cache's usual domination rules, but a different
// object or property family would make equal digests meaningless.
// Pre-populated entries can change WHICH equivalent witness a violated
// exploration reports, exactly as WithWorkers sharing does (verdicts
// are unaffected). Requires WithStateCache.
func WithVisitedTier(t *VisitedTier) Option { return func(c *Checker) { c.visited = t } }

// WithPOR enables sleep-set partial-order reduction in Explore: subtrees
// that only commute independent steps of an already-explored sibling are
// skipped and counted in Report.Pruned. Pruning needs the object under
// test to report per-step footprints (run.Footprinted; the repository's
// register/CAS/TM/lock implementations do) — objects without footprints
// explore the full tree exactly as before. POR preserves every verdict
// for properties that are invariant under swapping adjacent invocations
// (or adjacent responses) of different processes — true of every
// property in slx/check — but the witness of a violation may be a
// different (equivalent) schedule than full exploration reports.
// Default: off.
func WithPOR() Option { return func(c *Checker) { c.por = true } }

// WithStateCache enables state-fingerprint deduplication in Explore:
// prefixes that reach a configuration already fully explored — same
// object state (via the run.Fingerprintable hook), same process program
// counters, pending invocations, observations and crash set, and the
// same property-monitor residual state — are pruned and counted in
// Report.CacheHits. Objects without the fingerprint hook (or whose
// correctness depends on pointer identity, which the hook's contract
// excludes) explore the full tree exactly as before. The cache requires
// the incremental monitor path: combining it with WithBatchExplore (or
// a property whose Spawn returns nil) is an error, because cache-hit
// soundness rests on the monitors' canonical state digests. Like
// WithPOR it assumes environments that decide invocations per process,
// independently of the view — true of every environment in this
// repository. Composes with WithPOR and WithWorkers; under WithWorkers
// the shared cache makes which equivalent witness is reported
// timing-dependent (verdicts are unaffected). Default: off.
func WithStateCache() Option { return func(c *Checker) { c.cache = true } }

// WithReplayExecution forces Explore onto from-root replay execution:
// every explored prefix re-executes from the initial configuration,
// even when the object supports incremental execution
// (run.Snapshottable). By default Explore runs incrementally whenever
// the object allows it — descending by extending one persistent
// simulation and backtracking by snapshot restore — which visits the
// identical tree with amortized O(1) simulator steps per prefix
// (Report.SimSteps) plus bounded re-simulation (Report.Resims). The
// escape hatch exists for cross-checking the two engines, for
// before/after benchmarking, and for environments outside the
// incremental contract: an environment whose decisions depend on view
// fields other than the invoking process's own history projection and
// invocation count must use replay execution. Objects without the
// snapshot hook use replay automatically; soundness never depends on
// the hook.
func WithReplayExecution() Option { return func(c *Checker) { c.replay = true } }

// WithSample switches Explore into probabilistic sampling mode: instead
// of enumerating every schedule, it samples the given number of seeded
// schedules with the PCT strategy (Probabilistic Concurrency Testing:
// per-schedule random distinct process priorities plus d priority-change
// points at uniformly chosen steps — a bug of depth d is found with
// probability at least 1/(n·kᵈ⁻¹) per schedule). WithDepth bounds each
// schedule's granted steps (sampling is built for depths far beyond the
// exhaustive ceiling), WithCrashes injects crash decisions at uniformly
// chosen steps, and WithWorkers fans schedules across goroutines while
// keeping the Report — including which failure is surfaced — identical
// for a fixed WithSeed at any worker count (the least-index failing
// schedule wins, the sampling analogue of exhaustive exploration's
// preorder-least rule). Objects with the run.Snapshottable hook execute
// all schedules on one reused session per worker; others (or
// WithReplayExecution) rebuild each run from the root, with identical
// results. The Report gains Sampled, Schedules, DistinctStates and
// FailingSeed; a clean sampled Report is probabilistic evidence, not
// exhaustive proof. Sampling requires properties with native monitors
// and excludes WithBatchExplore, WithPOR and WithStateCache. Under
// WithContext, cancellation is polled per schedule and Explore returns
// the partial Report (Interrupted set) together with the context error.
func WithSample(schedules, d int) Option {
	return func(c *Checker) { c.sample = true; c.schedules = schedules; c.sampleD = d }
}

// WithSampleWalk switches sampling mode to the uniform random-walk
// strategy: each step picks uniformly among the ready processes (the d
// of WithSample is then ignored). Walk is a baseline against PCT —
// memoryless, no priority structure.
func WithSampleWalk() Option { return func(c *Checker) { c.walk = true } }

// WithSeed sets sampling's master seed. Schedule i draws all its
// randomness from seed+i, so WithSeed(rep.FailingSeed) with
// WithSample(1, d) replays exactly the failing schedule's strategy.
// Default: 1.
func WithSeed(s int64) Option { return func(c *Checker) { c.seed = s } }

// WithBatchExplore forces Explore onto the legacy batch path: every
// property re-judges the entire history of every explored prefix instead
// of consuming delta events through incremental monitors. Kept for
// cross-checking the two paths and for before/after benchmarking; the
// monitor path is the default and is strictly cheaper.
func WithBatchExplore() Option { return func(c *Checker) { c.batch = true } }

// New builds a Checker. At minimum WithObject is required; Check,
// Replay and Explore also need WithEnv.
func New(opts ...Option) *Checker {
	c := &Checker{
		procs:    2,
		maxSteps: run.DefaultMaxSteps,
		depth:    8,
		workers:  1,
		seed:     1,
		ctx:      context.Background(),
		newSched: func() run.Scheduler { return &run.RoundRobin{} },
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// need validates the configuration for an entry point.
func (c *Checker) need(method string, env bool) error {
	if c.newObject == nil {
		return fmt.Errorf("slx: %s requires WithObject", method)
	}
	if env && c.newEnv == nil {
		return fmt.Errorf("slx: %s requires WithEnv", method)
	}
	if c.procs < 1 {
		return fmt.Errorf("slx: %s requires WithProcs >= 1", method)
	}
	return nil
}

// cancellable wraps a scheduler so context cancellation ends the run.
func (c *Checker) cancellable(s run.Scheduler) run.Scheduler {
	return run.SchedulerFunc(func(v *run.View) (run.Decision, bool) {
		if c.ctx.Err() != nil {
			return run.Decision{}, false
		}
		return s.Next(v)
	})
}

// finish converts a finished run into a Report, evaluating every
// property on the unified execution.
func (c *Checker) finish(mode Mode, advName string, res *run.Result, props []Property) (*Report, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	if res.Err != nil {
		return nil, fmt.Errorf("slx: run failed: %w", res.Err)
	}
	e := NewExecution(res, c.window)
	rep := &Report{Mode: mode, Adversary: advName, Execution: e, Schedule: res.Schedule}
	for _, p := range props {
		rep.Verdicts = append(rep.Verdicts, p.Check(e))
	}
	return rep, nil
}

// Check executes one scheduled run and judges every property on it.
func (c *Checker) Check(props ...Property) (*Report, error) {
	if err := c.need("Check", true); err != nil {
		return nil, err
	}
	res := run.Run(run.Config{
		Procs:     c.procs,
		Object:    c.newObject(),
		Env:       c.newEnv(),
		Scheduler: c.cancellable(c.newSched()),
		MaxSteps:  c.maxSteps,
	})
	return c.finish(ModeCheck, "", res, props)
}

// Replay re-executes a recorded schedule — typically a Verdict.Witness —
// against a fresh object instance and judges every property on the
// reproduced execution. Replay is deterministic: the same schedule and
// environment yield the same history and verdicts. The environment must
// match the one that produced the schedule (for an adversary witness,
// configure WithEnv from the strategy's EnvScripter).
func (c *Checker) Replay(schedule []run.Decision, props ...Property) (*Report, error) {
	if err := c.need("Replay", true); err != nil {
		return nil, err
	}
	res := run.Run(run.Config{
		Procs:     c.procs,
		Object:    c.newObject(),
		Env:       c.newEnv(),
		Scheduler: c.cancellable(run.Fixed(schedule)),
		MaxSteps:  len(schedule) + 1,
	})
	return c.finish(ModeReplay, "", res, props)
}

// AttackConfig is what a Checker hands an Adversary: the object factory
// and budgets the strategy must attack within.
type AttackConfig struct {
	// NewObject creates a fresh instance of the implementation under
	// attack (adversaries may replay many probe runs).
	NewObject func() run.Object
	// NewEnv is the checker's environment factory; nil when unset.
	// Strategies that script their own inputs ignore it.
	NewEnv func() run.Environment
	// Procs is the number of processes.
	Procs int
	// MaxSteps is the step budget (for the bivalence adversary: the
	// target schedule length).
	MaxSteps int
	// Ctx cancels long-running strategies.
	Ctx context.Context
}

// Adversary is an attack strategy: an entity that "decides on the
// schedule and inputs of processes" (Section 2) trying to defeat a
// liveness property while respecting safety. slx/adversary implements
// the paper's strategies.
type Adversary interface {
	// Name identifies the strategy in reports.
	Name() string
	// Attack drives the implementation and returns the resulting run.
	Attack(cfg AttackConfig) (*run.Result, error)
}

// EnvScripter is optionally implemented by adversaries that script their
// own process inputs instead of using the checker's environment. The
// returned factory rebuilds that environment, which is what a checker
// needs under WithEnv to Replay the strategy's witness schedules.
type EnvScripter interface {
	ScriptedEnv() func() run.Environment
}

// Adversary runs an attack strategy against the configured object and
// judges every property on the execution it produces. Strategies whose
// runs depend on strategy state beyond the schedule are still
// reproducible by re-running the strategy itself (attacks are
// deterministic).
func (c *Checker) Adversary(adv Adversary, props ...Property) (*Report, error) {
	if err := c.need("Adversary", false); err != nil {
		return nil, err
	}
	res, err := adv.Attack(AttackConfig{
		NewObject: c.newObject,
		NewEnv:    c.newEnv,
		Procs:     c.procs,
		MaxSteps:  c.maxSteps,
		Ctx:       c.ctx,
	})
	if err != nil {
		return nil, fmt.Errorf("slx: adversary %s: %w", adv.Name(), err)
	}
	return c.finish(ModeAdversary, adv.Name(), res, props)
}

// violation transports a failing verdict out of the exploration.
type violation struct {
	v Verdict
	e *Execution // nil on the monitor path (the location comes from explore.Violation)
}

// Error implements error.
func (v *violation) Error() string { return v.v.String() }

// monitorSet adapts the property monitors to explore.MonitorSet,
// counting every event fed to every monitor. Small sets (the common
// case: one or two properties) keep the monitor slice in the inline
// array, so exploration's per-branch Fork allocates one object instead
// of two.
type monitorSet struct {
	mons   []Monitor
	scans  *atomic.Int64
	inline [2]Monitor
}

// newMonitorSet builds a set over mons, using the inline backing when
// it fits.
func newMonitorSet(mons []Monitor, scans *atomic.Int64) *monitorSet {
	s := &monitorSet{scans: scans}
	if len(mons) <= len(s.inline) {
		s.mons = append(s.inline[:0], mons...)
	} else {
		s.mons = mons
	}
	return s
}

// releasable is the optional per-monitor counterpart of the set's
// Release (see safety.Releaser).
type releasable interface{ Release() }

// setPool recycles monitor sets released by the exploration engine back
// into Fork, which otherwise allocates one set per explored branch.
var setPool = sync.Pool{New: func() any { return new(monitorSet) }}

// Release implements explore.ReleasableMonitorSet: the engine is done
// with this fork — recycle it and every monitor that opts in.
func (s *monitorSet) Release() {
	for i, m := range s.mons {
		if r, ok := m.(releasable); ok {
			r.Release()
		}
		s.mons[i] = nil
	}
	s.mons = s.mons[:0]
	setPool.Put(s)
}

// Step implements explore.MonitorSet.
func (s *monitorSet) Step(e hist.Event) error {
	for _, m := range s.mons {
		s.scans.Add(1)
		if !m.Step(e) {
			return &violation{v: m.Verdict()}
		}
	}
	return nil
}

// Fork implements explore.MonitorSet.
func (s *monitorSet) Fork() explore.MonitorSet {
	ns := setPool.Get().(*monitorSet)
	ns.scans = s.scans
	if ns.mons == nil {
		ns.mons = ns.inline[:0]
	}
	for _, m := range s.mons {
		ns.mons = append(ns.mons, m.Fork())
	}
	return ns
}

// StateDigest implements explore.Digester by chaining the property
// monitors' digests in property order. The set is digestable only when
// every monitor is (see Digester); one undigestable monitor makes the
// prefix uncacheable, never unsound.
func (s *monitorSet) StateDigest() (uint64, bool) {
	h := history.DigestSeed()
	for _, m := range s.mons {
		dg, ok := m.(Digester)
		if !ok {
			return 0, false
		}
		d, ok := dg.StateDigest()
		if !ok {
			return 0, false
		}
		h = history.DigestWord(h, d)
	}
	return h, true
}

// Explore enumerates every schedule up to the configured depth
// (optionally with crash injection) and checks each property on every
// reachable history prefix. Only safety properties are admissible:
// liveness is a statement about full fair executions, not prefixes. A
// clean exploration yields one passing Verdict per property; a violation
// yields the failing Verdict with the (non-nil) witness schedule and
// Report.Schedule set (and no verdicts for the other properties, since
// exploration stops at the first violation).
//
// By default properties are judged incrementally: Explore spawns one
// Monitor per property, feeds each new event exactly once per DFS edge,
// and forks the monitor set at schedule branch points, so a prefix's
// events are never replayed into a fresh checker. Report.EventScans
// counts the events fed to the property layer under either path;
// WithBatchExplore restores the legacy re-judge-every-prefix behavior.
// A safety property whose Spawn returns nil (a custom batch-only
// implementation) sends the whole exploration to the batch path too —
// monitors judge the history alone, while such a property's Check may
// consult the full Execution (schedule, step counts), which only the
// batch path supplies.
func (c *Checker) Explore(props ...Property) (*Report, error) {
	if err := c.ValidateExplore(props...); err != nil {
		return nil, err
	}
	ctx, cancel := c.exploreContext()
	defer cancel()
	if c.sample {
		return c.sampleExplore(ctx, props)
	}
	batch := c.batch
	for _, p := range props {
		if p.Spawn() == nil {
			batch = true
		}
	}
	workers := c.workers
	if workers < 1 {
		workers = 1
	}
	var scans atomic.Int64
	ecfg := explore.Config{
		Procs:       c.procs,
		NewObject:   c.newObject,
		NewEnv:      c.newEnv,
		Depth:       c.depth,
		Crashes:     c.crashes,
		Recoveries:  c.recoveries,
		Workers:     workers,
		Spawn:       c.spawn,
		POR:         c.por,
		Cache:       c.cache,
		Visited:     c.visited,
		ForceReplay: c.replay,
		Ctx:         ctx,
	}
	if batch {
		ecfg.Check = func(h hist.History, schedule []run.Decision) error {
			scans.Add(int64(len(h) * len(props)))
			e := &Execution{H: h, N: c.procs, Schedule: schedule, Window: c.window}
			for _, p := range props {
				if v := p.Check(e); !v.Holds {
					return &violation{v: v, e: e}
				}
			}
			return nil
		}
	} else {
		ecfg.NewMonitors = func() explore.MonitorSet {
			mons := make([]Monitor, len(props))
			for i, p := range props {
				mons[i] = p.Spawn()
			}
			return newMonitorSet(mons, &scans)
		}
	}
	st, err := explore.Run(ecfg)
	if st == nil {
		return nil, fmt.Errorf("slx: exploration failed: %w", err)
	}
	rep := &Report{
		Mode: ModeExplore, Prefixes: st.Prefixes, SimSteps: st.Steps, Resims: st.Resims,
		Pruned: st.Pruned, CacheHits: st.CacheHits, Workers: st.Workers,
		EventScans: int(scans.Load()),
	}
	if err != nil {
		var vio *violation
		if errors.As(err, &vio) {
			v, e := vio.v, vio.e
			var ev *explore.Violation
			if errors.As(err, &ev) {
				// Monitor path: attach the witness and rebuild the
				// violating prefix's execution from the location.
				v.Witness = ev.Schedule
				e = &Execution{H: ev.H, N: c.procs, Schedule: ev.Schedule, Window: c.window}
			}
			if v.Witness == nil {
				v.Witness = []run.Decision{}
			}
			rep.Execution = e
			rep.Schedule = v.Witness
			rep.Verdicts = []Verdict{v}
			return rep, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// Cancellation or a WithTimeout expiry: the partial Report —
			// statistics over the prefixes explored before the cut, no
			// verdicts — returns alongside the context error.
			rep.Interrupted = true
			return rep, cerr
		}
		return nil, fmt.Errorf("slx: exploration failed: %w", err)
	}
	for _, p := range props {
		rep.Verdicts = append(rep.Verdicts, Verdict{
			Property: p.Name(),
			Kind:     p.Kind(),
			Holds:    true,
			Reason:   fmt.Sprintf("no violation on %d schedule prefixes up to depth %d", st.Prefixes, c.depth),
		})
	}
	return rep, nil
}

// ValidateExplore checks the configuration and property set exactly as
// Explore would, without exploring anything: the admission check a
// service front end needs so a bad job is rejected synchronously with
// the same message the in-process call would produce. A nil error
// means Explore would proceed past validation (it can still fail later
// on engine errors).
func (c *Checker) ValidateExplore(props ...Property) error {
	if err := c.need("Explore", true); err != nil {
		return err
	}
	if c.visited != nil && !c.cache {
		return fmt.Errorf("slx: WithVisitedTier requires WithStateCache (the tier is the cache's storage)")
	}
	if c.workers < 1 {
		return fmt.Errorf("slx: workers: WithWorkers requires at least 1 worker, got %d", c.workers)
	}
	if c.recoveries < 0 {
		return fmt.Errorf("slx: WithRecoveries requires n >= 0, got %d", c.recoveries)
	}
	if c.recoveries > 0 && c.crashes < 1 {
		return fmt.Errorf("slx: WithRecoveries(%d) requires WithCrashes >= 1 (without crashes no process is ever recoverable)", c.recoveries)
	}
	if c.sample {
		switch {
		case c.schedules < 1:
			return fmt.Errorf("slx: WithSample requires at least 1 schedule, got %d", c.schedules)
		case c.sampleD < 0:
			return fmt.Errorf("slx: WithSample requires d >= 0, got %d", c.sampleD)
		case c.batch:
			return fmt.Errorf("slx: WithSample requires the incremental monitor path; drop WithBatchExplore")
		case c.por:
			return fmt.Errorf("slx: WithSample excludes WithPOR (sleep sets prune an enumeration; sampling has none)")
		case c.cache:
			return fmt.Errorf("slx: WithSample excludes WithStateCache (sampled schedules are independent; terminal states are already deduplicated into DistinctStates)")
		}
		for _, p := range props {
			if p.Kind() != Safety {
				return fmt.Errorf("slx: Explore checks prefixes, so it only admits safety properties; %q is %v", p.Name(), p.Kind())
			}
			if p.Spawn() == nil {
				return fmt.Errorf("slx: sampling judges histories through incremental monitors, but %q has none (Spawn returns nil)", p.Name())
			}
		}
		return nil
	}
	batch := c.batch
	for _, p := range props {
		if p.Kind() != Safety {
			return fmt.Errorf("slx: Explore checks prefixes, so it only admits safety properties; %q is %v", p.Name(), p.Kind())
		}
		if p.Spawn() == nil {
			batch = true
		}
	}
	if batch && c.cache {
		return fmt.Errorf("slx: WithStateCache requires the incremental monitor path (cache-hit soundness rests on monitor state digests); drop WithBatchExplore and use properties with native monitors")
	}
	return nil
}

// exploreContext derives Explore's working context: the configured one,
// bounded by the WithTimeout deadline when one is set.
func (c *Checker) exploreContext() (context.Context, context.CancelFunc) {
	if c.timeout > 0 {
		return context.WithTimeout(c.ctx, c.timeout)
	}
	return c.ctx, func() {}
}

// sampleExplore is Explore's sampling mode (WithSample): see the option
// for the contract. The Report's statistics are computed over the
// deterministic merged prefix of schedules, so a fixed seed yields an
// identical Report at any worker count. Validation already ran in
// Explore.
func (c *Checker) sampleExplore(ctx context.Context, props []Property) (*Report, error) {
	strat := sample.PCT
	stratName := fmt.Sprintf("PCT d=%d", c.sampleD)
	if c.walk {
		strat = sample.Walk
		stratName = "random walk"
	}
	var scans atomic.Int64
	st, err := sample.Run(sample.Config{
		Procs:     c.procs,
		NewObject: c.newObject,
		NewEnv:    c.newEnv,
		NewMonitors: func() explore.MonitorSet {
			mons := make([]Monitor, len(props))
			for i, p := range props {
				mons[i] = p.Spawn()
			}
			return newMonitorSet(mons, &scans)
		},
		Schedules:    c.schedules,
		Steps:        c.depth,
		Crashes:      c.crashes,
		Recoveries:   c.recoveries,
		Strategy:     strat,
		ChangePoints: c.sampleD,
		Seed:         c.seed,
		Workers:      c.workers,
		Spawn:        c.spawn,
		ForceReplay:  c.replay,
		Fingerprint:  true,
		Ctx:          ctx,
	})
	if st == nil {
		return nil, fmt.Errorf("slx: sampling failed: %w", err)
	}
	rep := &Report{
		Mode: ModeExplore, Sampled: true,
		Schedules: st.Schedules, DistinctStates: st.DistinctStates,
		SimSteps: st.Steps, Resims: st.Resims, Workers: st.Workers,
		// Deterministic merged count, not the racy live counter: every
		// merged event was judged by every monitor (the violating event
		// only up to the failing one, corrected below).
		EventScans:  st.Events * len(props),
		Interrupted: st.Interrupted,
	}
	if err != nil {
		var vio *violation
		if errors.As(err, &vio) {
			v := vio.v
			var ev *explore.Violation
			if errors.As(err, &ev) {
				v.Witness = ev.Schedule
				rep.Execution = &Execution{H: ev.H, N: c.procs, Schedule: ev.Schedule, Window: c.window}
			}
			if v.Witness == nil {
				v.Witness = []run.Decision{}
			}
			for i, p := range props {
				if p.Name() == v.Property {
					rep.EventScans -= len(props) - i - 1
					break
				}
			}
			rep.Schedule = v.Witness
			rep.Verdicts = []Verdict{v}
			rep.FailingSeed = st.FailingSeed
			return rep, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// An interrupted sampling run (cancellation or WithTimeout
			// expiry) returns the partial Report with the context error.
			return rep, cerr
		}
		return nil, fmt.Errorf("slx: sampling failed: %w", err)
	}
	for _, p := range props {
		rep.Verdicts = append(rep.Verdicts, Verdict{
			Property: p.Name(),
			Kind:     p.Kind(),
			Holds:    true,
			Reason: fmt.Sprintf("no violation on %d sampled schedules to depth %d (%s, seed %d) — probabilistic evidence, not exhaustive proof",
				st.Schedules, c.depth, stratName, c.seed),
		})
	}
	return rep, nil
}
