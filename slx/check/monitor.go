package check

import (
	"fmt"
	"sync"

	"repro/internal/safety"
	"repro/slx"
	"repro/slx/hist"
)

// safetyMonitor adapts a native internal/safety.Monitor to slx.Monitor,
// tracking the event position so failing verdicts pinpoint the violating
// event.
type safetyMonitor struct {
	name   string
	inner  safety.Monitor
	events int
	failAt int // 1-based event index of the violation, 0 while holding
	failEv hist.Event
}

// wrapMonitor wraps a native monitor under the property name.
func wrapMonitor(name string, inner safety.Monitor) slx.Monitor {
	return &safetyMonitor{name: name, inner: inner}
}

// Step implements slx.Monitor.
func (m *safetyMonitor) Step(e hist.Event) bool {
	if m.failAt > 0 {
		return false
	}
	m.events++
	if !m.inner.Step(e) {
		m.failAt = m.events
		m.failEv = e
		return false
	}
	return true
}

// Verdict implements slx.Monitor.
func (m *safetyMonitor) Verdict() slx.Verdict {
	v := slx.Verdict{Property: m.name, Kind: slx.Safety, Holds: m.failAt == 0}
	if v.Holds {
		v.Reason = fmt.Sprintf("holds after %d events", m.events)
	} else {
		v.Reason = fmt.Sprintf("violated at event %d: %s", m.failAt, m.failEv)
	}
	return v
}

// wrapPool recycles released wrappers back into Fork (exploration forks
// one wrapper per monitor per branch).
var wrapPool = sync.Pool{New: func() any { return new(safetyMonitor) }}

// Fork implements slx.Monitor.
func (m *safetyMonitor) Fork() slx.Monitor {
	f := wrapPool.Get().(*safetyMonitor)
	f.name, f.inner, f.events, f.failAt, f.failEv = m.name, m.inner.Fork(), m.events, m.failAt, m.failEv
	return f
}

// Release recycles a fork the exploration engine is done with, passing
// the release on to the native monitor (see safety.Releaser).
func (m *safetyMonitor) Release() {
	if r, ok := m.inner.(safety.Releaser); ok {
		r.Release()
	}
	m.inner = nil
	wrapPool.Put(m)
}

// StateDigest implements slx.Digester by delegating to the native
// monitor's safety.Digester hook. The wrapper's own event counter needs
// no digesting: it equals the total event count, which the simulator
// state fingerprint pins (per-process completed and pending operations
// and the crash set determine it).
func (m *safetyMonitor) StateDigest() (uint64, bool) {
	d, ok := m.inner.(safety.Digester)
	if !ok {
		return 0, false
	}
	return d.StateDigest()
}

// monitored builds the standard slx.Property for a native incremental
// checker: batch Check through holds, exploration through spawn.
func monitored(name string, holds func(h hist.History) bool, spawn func() safety.Monitor) slx.Property {
	return slx.MonitoredSafety(name, holds, func() slx.Monitor { return wrapMonitor(name, spawn()) })
}
