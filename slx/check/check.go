// Package check is the public catalog of the paper's concrete
// properties, every one expressed as a unified slx.Property: safety
// (Section 3.1 — linearizability, consensus agreement+validity, mutual
// exclusion, TM opacity, strict serializability and the Section 5.3
// property S) and liveness (Sections 3.2 and 5.1 — wait/lock/obstruction
// freedom, local progress, the (l,k)-freedom family, S-freedom and
// (n,x)-liveness).
//
// All constructors delegate to the checkers in internal/safety and
// internal/liveness; the verdicts they produce carry failure reasons
// phrased in the paper's vocabulary (correct / stepping / progressing
// process sets) and replayable witness schedules.
package check

import (
	"fmt"

	"repro/internal/liveness"
	"repro/internal/safety"
	"repro/slx"
	"repro/slx/hist"
)

// Good is a good-response set G_Tp; see slx.Good.
type Good = slx.Good

// TMGood is the TM good-response set: only commits are progress.
func TMGood() Good { return slx.TMGood() }

// fromLiveness adapts an internal liveness property, explaining failures
// with the correct/stepping/progressing sets of the tail window.
func fromLiveness(p liveness.Property, good Good) slx.Property {
	return slx.LivenessFunc(p.Name(),
		func(e *slx.Execution) bool { return p.Holds(e.LivenessView()) },
		func(e *slx.Execution) string {
			v := e.LivenessView()
			return fmt.Sprintf("violated: correct=%v steppers=%v progressing=%v in the tail window of the %d-step run",
				v.Correct(), v.Steppers(), v.Progressing(good), e.Steps)
		})
}

// Safety properties. Every safety constructor pairs the batch checker
// with its native incremental monitor (slx.Property.Spawn), so
// Checker.Explore feeds each event once per DFS edge instead of
// re-judging whole prefixes.

// AgreementValidity is the consensus safety property: no two processes
// decide differently, and every decision was proposed.
func AgreementValidity() slx.Property {
	p := safety.AgreementValidity{}
	return monitored(p.Name(), p.Holds, p.Spawn)
}

// KSetAgreement is k-set agreement safety: at most k distinct decisions,
// each of them proposed.
func KSetAgreement(k int) slx.Property {
	p := safety.KSetAgreement{K: k}
	return monitored(p.Name(), p.Holds, p.Spawn)
}

// MutualExclusion is the lock safety property: no two processes hold the
// critical section simultaneously, and only the holder releases.
func MutualExclusion() slx.Property {
	p := safety.MutualExclusion{}
	return monitored(p.Name(), p.Holds, p.Spawn)
}

// Opacity is TM opacity: a global serialization legal at every prefix,
// aborted and live transactions included.
func Opacity() slx.Property {
	p := safety.Opacity{}
	return monitored(p.Name(), safety.Opaque, p.Spawn)
}

// StrictSerializability relaxes opacity to committed transactions.
func StrictSerializability() slx.Property {
	p := safety.StrictSerializability{}
	return monitored(p.Name(), p.Holds, p.Spawn)
}

// PropertyS is the Section 5.3 property: opacity plus the
// timestamp-based abort rule of Algorithm 1.
func PropertyS() slx.Property {
	p := safety.PropertyS{}
	return monitored(p.Name(), p.Holds, p.Spawn)
}

// Sequential specifications for the generic linearizability checker.
type (
	// SeqSpec is a sequential object specification.
	SeqSpec = safety.SeqSpec
	// State is an opaque sequential-specification state.
	State = safety.State
	// Transition is one legal (response, next-state) pair.
	Transition = safety.Transition
	// RegisterSpec is the atomic read/write register specification.
	RegisterSpec = safety.RegisterSpec
	// CASSpec is the compare-and-swap object specification.
	CASSpec = safety.CASSpec
	// QueueSpec is the FIFO queue specification ("enq"/"deq" with
	// string-encoded payloads; see safety.QueueSpec).
	QueueSpec = safety.QueueSpec
	// CASArg is the argument struct of a cas invocation.
	CASArg = safety.CASArg
)

// Linearizability is linearizability with respect to the sequential
// specification spec. The incremental monitor carries a persistent set
// of partial linearizations along the history (safety.LinMonitor); the
// batch check is the independent memoized Wing–Gong search.
func Linearizability(spec SeqSpec) slx.Property {
	return monitored(fmt.Sprintf("linearizability(%s)", spec.Name()),
		func(h hist.History) bool { return safety.Linearizable(spec, h) },
		func() safety.Monitor { return safety.NewLinMonitor(spec) })
}

// StrictLinearizability is the crash-aware variant of Linearizability
// (Aguilera–Frølund strict linearizability): an operation pending when
// its process crashes either linearizes before the crash point or
// vanishes, so a process that recovers observes exactly the effects
// that were durable at its crash. On crash-free histories it coincides
// with Linearizability. Use it with WithCrashes/WithRecoveries; the
// plain property is too weak there — it lets a crashed operation take
// effect after its process has already recovered and moved on.
func StrictLinearizability(spec SeqSpec) slx.Property {
	return monitored(fmt.Sprintf("strict-linearizability(%s)", spec.Name()),
		func(h hist.History) bool { return safety.StrictLinearizable(spec, h) },
		func() safety.Monitor { return safety.NewStrictLinMonitor(spec) })
}

// Opaque reports TM opacity of a single history (the raw predicate
// behind Opacity).
func Opaque(h hist.History) bool { return safety.Opaque(h) }

// Decisions extracts the per-process consensus decisions of a history.
func Decisions(h hist.History) map[int]hist.Value { return safety.Decisions(h) }

// PrefixClosed verifies on a concrete history that a safety property is
// prefix-closed along it (Definition 3.1): once it fails at some prefix
// it fails at all extensions. Used to validate custom checkers.
func PrefixClosed(p slx.Property, h hist.History) bool {
	return safety.PrefixClosed(safety.PropertyFunc{
		PropName: p.Name(),
		F: func(h hist.History) bool {
			return p.Check(&slx.Execution{H: h}).Holds
		},
	}, h)
}

// Liveness properties.

// WaitFreedom requires every correct process to make progress — the
// strongest liveness requirement L_max for types whose every response is
// good (consensus, registers).
func WaitFreedom(good Good) slx.Property {
	return fromLiveness(liveness.WaitFreedom{Good: good}, good)
}

// LocalProgress is the TM L_max: every correct process eventually
// commits.
func LocalProgress() slx.Property {
	return fromLiveness(liveness.LocalProgress{}, TMGood())
}

// LLockFreedom is l-lock-freedom: at least l processes make progress if
// at least l are correct (all correct ones otherwise).
func LLockFreedom(l int, good Good) slx.Property {
	return fromLiveness(liveness.LLockFreedom{L: l, Good: good}, good)
}

// KObstructionFreedom is k-obstruction-freedom: whenever at most k
// processes take infinitely many steps, all of them make progress.
func KObstructionFreedom(k int, good Good) slx.Property {
	return fromLiveness(liveness.KObstructionFreedom{K: k, Good: good}, good)
}

// LK is (l,k)-freedom (Definition 5.1), realized as the union of
// l-lock-freedom and k-obstruction-freedom the paper reasons with.
// Requires l <= k.
func LK(l, k int, good Good) slx.Property {
	return fromLiveness(liveness.LK{L: l, K: k, Good: good}, good)
}

// LKLiteral is the literal implication form of Definition 5.1; it
// differs from LK on executions where fewer than l processes step at
// all.
func LKLiteral(l, k int, good Good) slx.Property {
	return fromLiveness(liveness.LKLiteral{L: l, K: k, Good: good}, good)
}

// SFreedom is Taubenfeld's S-freedom: progress for every contention-free
// process group whose size is in sizes.
func SFreedom(sizes []int, good Good) slx.Property {
	set := make(map[int]bool, len(sizes))
	for _, s := range sizes {
		set[s] = true
	}
	return fromLiveness(liveness.SFreedom{Sizes: set, Good: good}, good)
}

// NXLiveness is the (n,x)-liveness of Imbs-Raynal-Taubenfeld: the listed
// processes are wait-free, the rest obstruction-free.
func NXLiveness(waitFree []int, good Good) slx.Property {
	return fromLiveness(liveness.NXLiveness{WaitFree: waitFree, Good: good}, good)
}

// Fair asserts the windowed fairness of the execution itself (Section
// 3.2): every correct, non-parked process steps in the tail window.
// Liveness verdicts are only meaningful when Fair holds.
func Fair() slx.Property {
	return slx.LivenessFunc("fair", func(e *slx.Execution) bool { return e.Fair() },
		func(e *slx.Execution) string {
			return fmt.Sprintf("unfair: correct=%v but only %v step in the tail window", e.Correct(), e.Steppers())
		})
}
