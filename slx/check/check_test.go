package check_test

// One table-driven test per exported property constructor: every
// property must pass on a known-good run and fail — with a replayable
// witness — on a known-bad one. The bad cases use deliberately broken
// objects or starving schedules; witnesses are replayed through
// Checker.Replay and must reproduce the failing verdict.

import (
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/consensus"
	"repro/slx/hist"
	"repro/slx/mutex"
	"repro/slx/run"
	"repro/slx/tm"
)

// testRegister is a linearizable read/write register: every access is a
// single atomic step.
type testRegister struct{ v hist.Value }

func (r *testRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() { out = r.v })
	case "write":
		p.Exec("write", func() { r.v = inv.Arg; out = hist.OK })
	}
	return out
}

// badRegister responds to reads with a value nobody ever wrote.
type badRegister struct{}

func (badRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() { out = 99 })
	case "write":
		p.Exec("write", func() { out = hist.OK })
	}
	return out
}

// brokenLock grants every acquire immediately: mutual exclusion fails as
// soon as two processes hold it.
type brokenLock struct{}

func (brokenLock) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	p.Exec(inv.Op, func() {
		if inv.Op == mutex.OpAcquire {
			out = mutex.Locked
		} else {
			out = mutex.Unlocked
		}
	})
	return out
}

// brokenTM responds to reads with an invented value and commits
// everything: opacity (and everything stronger) fails.
type brokenTM struct{}

func (brokenTM) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	p.Exec(inv.Op, func() {
		switch inv.Op {
		case hist.TMRead:
			out = 7
		case hist.TMTryC:
			out = hist.Commit
		default:
			out = hist.OK
		}
	})
	return out
}

// registerEnv has both processes write their id then read.
func registerEnv() run.Environment {
	return run.Script(map[int][]run.Invocation{
		1: {{Op: "write", Arg: 1}, {Op: "read"}},
		2: {{Op: "write", Arg: 2}, {Op: "read"}},
	})
}

func txnRW() map[int]tm.Txn {
	return map[int]tm.Txn{
		1: {Accesses: []tm.Access{{Var: "x"}, {Write: true, Var: "x", Val: 1}}},
		2: {Accesses: []tm.Access{{Var: "x"}, {Write: true, Var: "x", Val: 2}}},
	}
}

// propCase is one good-run/bad-run pair for a property constructor.
type propCase struct {
	name string
	prop func() slx.Property
	good []slx.Option
	bad  []slx.Option
}

func obj(f func() run.Object) slx.Option { return slx.WithObject(f) }

func env(f func() run.Environment) slx.Option { return slx.WithEnv(f) }

func sched(f func() run.Scheduler) slx.Option { return slx.WithScheduler(f) }

func proposeForever01() slx.Option {
	return env(func() run.Environment {
		return consensus.ProposeForever(map[int]hist.Value{1: 0, 2: 1})
	})
}

func proposeOnce(vals map[int]hist.Value) slx.Option {
	return env(func() run.Environment { return consensus.ProposeOnce(vals) })
}

func cases() []propCase {
	commitAdopt := obj(func() run.Object { return consensus.NewCommitAdoptOF(2) })
	casConsensus := obj(func() run.Object { return consensus.NewCASBased() })
	trivial := obj(func() run.Object { return consensus.Trivial{} })
	solo1 := sched(func() run.Scheduler { return run.Solo(1) })
	return []propCase{
		{
			name: "agreement+validity",
			prop: check.AgreementValidity,
			good: []slx.Option{commitAdopt, proposeForever01(), slx.WithMaxSteps(200)},
			bad: []slx.Option{
				obj(func() run.Object { return consensus.NewDecideOwn(2) }),
				proposeOnce(map[int]hist.Value{1: 0, 2: 1}), slx.WithMaxSteps(60),
			},
		},
		{
			name: "k-set-agreement",
			prop: func() slx.Property { return check.KSetAgreement(2) },
			good: []slx.Option{
				obj(func() run.Object { return consensus.NewDecideOwn(2) }),
				proposeOnce(map[int]hist.Value{1: 0, 2: 1}), slx.WithMaxSteps(60),
			},
			bad: []slx.Option{
				obj(func() run.Object { return consensus.NewDecideOwn(3) }), slx.WithProcs(3),
				proposeOnce(map[int]hist.Value{1: 0, 2: 1, 3: 2}), slx.WithMaxSteps(90),
			},
		},
		{
			name: "mutual-exclusion",
			prop: check.MutualExclusion,
			good: []slx.Option{
				obj(func() run.Object { return mutex.NewPeterson() }),
				env(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
				slx.WithMaxSteps(200),
			},
			bad: []slx.Option{
				obj(func() run.Object { return brokenLock{} }),
				env(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
				slx.WithMaxSteps(60),
			},
		},
		{
			name: "linearizability(register)",
			prop: func() slx.Property { return check.Linearizability(check.RegisterSpec{Initial: 0}) },
			good: []slx.Option{
				obj(func() run.Object { return &testRegister{v: 0} }),
				env(registerEnv), slx.WithMaxSteps(60),
			},
			bad: []slx.Option{
				obj(func() run.Object { return badRegister{} }),
				env(registerEnv), slx.WithMaxSteps(60),
			},
		},
		{
			name: "opacity",
			prop: check.Opacity,
			good: []slx.Option{
				obj(func() run.Object { return tm.NewGlobalCAS(2) }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(200),
			},
			bad: []slx.Option{
				obj(func() run.Object { return brokenTM{} }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(80),
			},
		},
		{
			name: "strict-serializability",
			prop: check.StrictSerializability,
			good: []slx.Option{
				obj(func() run.Object { return tm.NewGlobalCAS(2) }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(200),
			},
			bad: []slx.Option{
				obj(func() run.Object { return brokenTM{} }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(80),
			},
		},
		{
			name: "property-S",
			prop: check.PropertyS,
			good: []slx.Option{
				obj(func() run.Object { return tm.NewI12(2) }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(200),
			},
			bad: []slx.Option{
				obj(func() run.Object { return brokenTM{} }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(80),
			},
		},
		{
			name: "wait-freedom",
			prop: func() slx.Property { return check.WaitFreedom(nil) },
			good: []slx.Option{casConsensus, proposeForever01(), slx.WithMaxSteps(200)},
			bad:  []slx.Option{commitAdopt, proposeForever01(), slx.WithMaxSteps(400)},
		},
		{
			name: "local-progress",
			prop: check.LocalProgress,
			good: []slx.Option{
				obj(func() run.Object { return tm.NewGlobalCAS(1) }), slx.WithProcs(1),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(200),
			},
			bad: []slx.Option{
				obj(func() run.Object { return tm.Aborter{} }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }), slx.WithMaxSteps(200),
			},
		},
		{
			name: "l-lock-freedom",
			prop: func() slx.Property { return check.LLockFreedom(1, mutex.Good()) },
			good: []slx.Option{
				obj(func() run.Object { return mutex.NewTASLock() }),
				env(func() run.Environment { return mutex.AcquireReleaseLoop(2) }),
				slx.WithMaxSteps(200),
			},
			bad: []slx.Option{trivial, proposeForever01(), slx.WithMaxSteps(200)},
		},
		{
			name: "k-obstruction-freedom",
			prop: func() slx.Property { return check.KObstructionFreedom(2, nil) },
			good: []slx.Option{casConsensus, proposeForever01(), slx.WithMaxSteps(200)},
			bad:  []slx.Option{commitAdopt, proposeForever01(), slx.WithMaxSteps(400)},
		},
		{
			name: "(1,2)-freedom",
			prop: func() slx.Property { return check.LK(1, 2, nil) },
			good: []slx.Option{casConsensus, proposeForever01(), slx.WithMaxSteps(200)},
			bad:  []slx.Option{commitAdopt, proposeForever01(), slx.WithMaxSteps(400)},
		},
		{
			name: "(1,2)-freedom-literal",
			prop: func() slx.Property { return check.LKLiteral(1, 2, nil) },
			good: []slx.Option{casConsensus, proposeForever01(), slx.WithMaxSteps(200)},
			bad:  []slx.Option{commitAdopt, proposeForever01(), slx.WithMaxSteps(400)},
		},
		{
			name: "S-freedom",
			prop: func() slx.Property { return check.SFreedom([]int{1}, nil) },
			good: []slx.Option{commitAdopt, proposeForever01(), solo1, slx.WithMaxSteps(200)},
			bad:  []slx.Option{trivial, proposeForever01(), solo1, slx.WithMaxSteps(200)},
		},
		{
			name: "(n,x)-liveness",
			prop: func() slx.Property { return check.NXLiveness([]int{1}, nil) },
			good: []slx.Option{casConsensus, proposeForever01(), slx.WithMaxSteps(200)},
			bad:  []slx.Option{trivial, proposeForever01(), slx.WithMaxSteps(200)},
		},
		{
			name: "fair",
			prop: check.Fair,
			good: []slx.Option{commitAdopt, proposeForever01(), slx.WithMaxSteps(200)},
			bad:  []slx.Option{commitAdopt, proposeForever01(), solo1, slx.WithMaxSteps(200)},
		},
	}
}

func TestPropertiesGoodAndBad(t *testing.T) {
	for _, tc := range cases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Known-good run: the property holds.
			good, err := slx.New(tc.good...).Check(tc.prop())
			if err != nil {
				t.Fatalf("good run: %v", err)
			}
			if !good.OK() {
				t.Fatalf("good run must pass, got %s", good.Failures()[0])
			}

			// Known-bad run: the property fails with a witness…
			bad := slx.New(tc.bad...)
			rep, err := bad.Check(tc.prop())
			if err != nil {
				t.Fatalf("bad run: %v", err)
			}
			if rep.OK() {
				t.Fatalf("bad run must fail %s (history %s)", tc.name, rep.Execution.H)
			}
			v := rep.Failures()[0]
			if v.Reason == "" {
				t.Error("failing verdict must carry a reason")
			}
			if v.Witness == nil {
				t.Fatal("failing verdict must carry a witness schedule")
			}

			// …and the witness replays to the same violation.
			replayed, err := bad.Replay(v.Witness, tc.prop())
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if replayed.OK() {
				t.Errorf("witness %v must replay to the violation", v.Witness)
			}
			if !replayed.Execution.H.Equal(rep.Execution.H) {
				t.Errorf("replayed history %s differs from original %s", replayed.Execution.H, rep.Execution.H)
			}
		})
	}
}

// TestExploreUsesMonitors: every safety property explored through the
// default incremental path agrees with the batch path and scans at least
// 2× fewer property events.
func TestExploreUsesMonitors(t *testing.T) {
	safetyProps := []struct {
		name string
		prop func() slx.Property
		opts []slx.Option
	}{
		{
			name: "agreement+validity",
			prop: check.AgreementValidity,
			opts: []slx.Option{
				obj(func() run.Object { return consensus.NewCommitAdoptOF(2) }),
				proposeOnce(map[int]hist.Value{1: 0, 2: 1}),
				slx.WithDepth(8),
			},
		},
		{
			name: "linearizability",
			prop: func() slx.Property { return check.Linearizability(check.RegisterSpec{Initial: 0}) },
			opts: []slx.Option{
				obj(func() run.Object { return &testRegister{v: 0} }),
				env(registerEnv),
				slx.WithDepth(6),
			},
		},
		{
			name: "property-S",
			prop: check.PropertyS,
			opts: []slx.Option{
				obj(func() run.Object { return tm.NewI12(2) }),
				env(func() run.Environment { return tm.TxnLoop(txnRW()) }),
				slx.WithDepth(7),
			},
		},
	}
	for _, tc := range safetyProps {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mon, err := slx.New(tc.opts...).Explore(tc.prop())
			if err != nil {
				t.Fatalf("monitor explore: %v", err)
			}
			batch, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)], slx.WithBatchExplore())...).Explore(tc.prop())
			if err != nil {
				t.Fatalf("batch explore: %v", err)
			}
			if mon.OK() != batch.OK() || mon.Prefixes != batch.Prefixes {
				t.Fatalf("paths disagree: monitor OK=%v prefixes=%d, batch OK=%v prefixes=%d",
					mon.OK(), mon.Prefixes, batch.OK(), batch.Prefixes)
			}
			if mon.EventScans*2 > batch.EventScans {
				t.Errorf("monitor path scanned %d property events, want ≤ half of batch's %d",
					mon.EventScans, batch.EventScans)
			}
			t.Logf("prefixes=%d scans: monitor=%d batch=%d (%.1fx)",
				mon.Prefixes, mon.EventScans, batch.EventScans,
				float64(batch.EventScans)/float64(mon.EventScans+1))
		})
	}
}

// TestExploreViolationWitnessReplay: a violation found by the monitor
// path carries a non-nil witness and Report.Schedule, and the witness
// replays to the violation.
func TestExploreViolationWitnessReplay(t *testing.T) {
	c := slx.New(
		obj(func() run.Object { return consensus.NewDecideOwn(2) }),
		proposeOnce(map[int]hist.Value{1: 0, 2: 1}),
		slx.WithDepth(8),
	)
	rep, err := c.Explore(check.AgreementValidity())
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if rep.OK() {
		t.Fatal("decide-own must violate agreement")
	}
	if rep.Schedule == nil {
		t.Fatal("Report.Schedule must be non-nil on failure")
	}
	v := rep.Failures()[0]
	if v.Witness == nil {
		t.Fatal("verdict witness must be non-nil on failure")
	}
	replayed, err := c.Replay(v.Witness, check.AgreementValidity())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed.OK() {
		t.Error("witness must replay to the violation")
	}
}
