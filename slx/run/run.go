// Package run is the public facade over the deterministic scheduler-driven
// simulator (internal/sim): the asynchronous shared-memory system of the
// paper's Section 2, in which an external scheduler grants every atomic
// step. All types are aliases of the implementation types, so schedules,
// results and objects flow freely between the public API and the engine.
//
// A run is fully determined by its schedule (the sequence of Decision
// values), which is what makes witness schedules replayable: feed a
// recorded schedule to Fixed and the identical history is reproduced.
package run

import "repro/internal/sim"

// DefaultMaxSteps bounds a run when Config.MaxSteps is zero.
const DefaultMaxSteps = sim.DefaultMaxSteps

// Invocation describes an operation a process invokes on the object under
// test.
type Invocation = sim.Invocation

// LazyArg is an invocation argument resolved at scheduling time.
type LazyArg = sim.LazyArg

// Object is a shared-object implementation under test.
type Object = sim.Object

// ObjectFunc adapts a function to Object.
type ObjectFunc = sim.ObjectFunc

// Proc is the per-process handle passed to Object.Apply.
type Proc = sim.Proc

// Footprinted is the opt-in footprint hook for partial-order reduction:
// Objects implementing it promise that every cross-process access of
// Apply is declared to the executing Proc (repository base objects
// declare automatically; custom single-step objects call Proc.Access).
type Footprinted = sim.Footprinted

// Access is the recorded footprint of one scheduler decision.
type Access = sim.Access

// Fingerprintable is the opt-in state-fingerprint hook for exploration's
// state cache: Objects implementing it promise a canonical content
// encoding of all shared state (never pointer-identity-sensitive) and
// that every value Apply reads from shared state is declared via
// Proc.Observe (repository base objects declare automatically).
type Fingerprintable = sim.Fingerprintable

// Fingerprinter accumulates the canonical state digest an Object's
// Fingerprint hook writes into.
type Fingerprinter = sim.Fingerprinter

// Snapshottable is the opt-in snapshot hook of incremental exploration:
// Objects implementing it (together with Stepped) can be rewound to
// earlier configurations, so Explore descends by extending one
// persistent simulation instead of replaying every prefix from the
// root. Snapshot/Restore must capture all object state that outlives a
// granted step (repository base objects provide composable
// Snapshot/Restore methods); in-flight operation state lives in the
// continuation frames, which the engine forks and restores by itself.
// See the sim.Snapshottable contract for the details. Objects without
// the hook are explored by from-root replay, with identical verdicts.
type Snapshottable = sim.Snapshottable

// Stepped is the continuation form of an Object: operations run as
// explicit resumable frames (one access per Step call) driven directly
// by the exploration loop, with no goroutine per process. Incremental
// exploration requires it alongside Snapshottable. See sim.Stepped for
// the window-equivalence contract with Apply.
type Stepped = sim.Stepped

// Frame is one in-flight operation of a Stepped object.
type Frame = sim.Frame

// StepStatus is what a Begin or Step call reports back to the engine.
type StepStatus = sim.StepStatus

// Step statuses.
const (
	StepPaused  = sim.StepPaused
	StepDone    = sim.StepDone
	StepBlocked = sim.StepBlocked
)

// RewindableEnv is the opt-in environment-rewind hook of incremental
// exploration; stock environments (OneShot, Script, ...) are stateless
// and rewindable for free. See sim.RewindableEnv.
type RewindableEnv = sim.RewindableEnv

// Recoverable is the opt-in crash–recovery hook: Objects implementing
// it split their state into a durable part that survives crashes
// (CrashVolatile wipes everything else at every crash decision) and
// provide the recovery routine a recovered process runs before
// rejoining its workload (RecoverFrame; nil means none). Objects
// without the hook still support recover decisions — all their state is
// treated as durable and recovery runs no routine. See sim.Recoverable
// for the full composition contract.
type Recoverable = sim.Recoverable

// SessionGated optionally vetoes snapshot support at runtime (for
// objects with pluggable components); see sim.SessionGated.
type SessionGated = sim.SessionGated

// CanSnapshot reports whether an object will be explored incrementally.
func CanSnapshot(o Object) bool { return sim.CanSnapshot(o) }

// Environment decides which operations processes invoke.
type Environment = sim.Environment

// EnvironmentFunc adapts a function to Environment.
type EnvironmentFunc = sim.EnvironmentFunc

// Decision is one scheduler choice: grant a step, crash a process, or
// recover a crashed process.
type Decision = sim.Decision

// Scheduler picks the next decision given the current view.
type Scheduler = sim.Scheduler

// SchedulerFunc adapts a function to Scheduler.
type SchedulerFunc = sim.SchedulerFunc

// View is a read-only snapshot of the run passed to schedulers and
// environments.
type View = sim.View

// StopReason says why a run ended.
type StopReason = sim.StopReason

// Stop reasons.
const (
	StopBudget    = sim.StopBudget
	StopScheduler = sim.StopScheduler
	StopQuiescent = sim.StopQuiescent
	StopError     = sim.StopError
)

// Result is the outcome of a run.
type Result = sim.Result

// Config describes a run.
type Config = sim.Config

// Run executes a configured simulation to completion.
func Run(cfg Config) *Result { return sim.Run(cfg) }

// Schedulers.

// RoundRobin schedules ready processes cyclically by id (fair).
type RoundRobin = sim.RoundRobin

// Solo schedules only the given process (step-contention-free runs).
func Solo(proc int) Scheduler { return sim.Solo(proc) }

// Fixed replays an explicit decision sequence, then stops.
func Fixed(schedule []Decision) Scheduler { return sim.Fixed(schedule) }

// FixedProcs replays an explicit sequence of process ids, then stops.
func FixedProcs(procs []int) Scheduler { return sim.FixedProcs(procs) }

// Seq runs each scheduler in turn as the previous one stops.
func Seq(scheds ...Scheduler) Scheduler { return sim.Seq(scheds...) }

// Random schedules uniformly among ready processes, seeded for replay.
func Random(seed int64) Scheduler { return sim.Random(seed) }

// RandomCrashy is Random plus a bounded per-decision crash probability.
func RandomCrashy(seed int64, crashProb float64, maxCrashes int) Scheduler {
	return sim.RandomCrashy(seed, crashProb, maxCrashes)
}

// Limit wraps a scheduler and stops after at most n of its decisions.
func Limit(s Scheduler, n int) Scheduler { return sim.Limit(s, n) }

// Alternate steps the given processes in strict rotation.
func Alternate(procs ...int) Scheduler { return sim.Alternate(procs...) }

// Environments.

// OneShot has each process perform its single invocation, then idle.
func OneShot(invs map[int]Invocation) Environment { return sim.OneShot(invs) }

// Script has each process perform its listed invocations in order.
func Script(script map[int][]Invocation) Environment { return sim.Script(script) }

// Repeat has every process perform the same invocation forever.
func Repeat(inv Invocation) Environment { return sim.Repeat(inv) }

// RepeatPerProc has each process repeat its own invocation forever.
func RepeatPerProc(invs map[int]Invocation) Environment { return sim.RepeatPerProc(invs) }
