package run_test

import (
	"reflect"
	"testing"

	"repro/slx/hist"
	"repro/slx/run"
)

// counter is a tiny footprint-declaring shared counter.
type counter struct{ n int }

func (c *counter) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	p.Exec("incr", func() { p.Access("n", true); c.n++; out = c.n })
	return out
}

func (c *counter) Footprints() bool { return true }

func config(obj run.Object, sched run.Scheduler) run.Config {
	return run.Config{
		Procs:  2,
		Object: obj,
		Env: run.Script(map[int][]run.Invocation{
			1: {{Op: "incr"}, {Op: "incr"}},
			2: {{Op: "incr"}},
		}),
		Scheduler: sched,
		MaxSteps:  50,
	}
}

// TestRoundRobinRunsToQuiescence drives a scripted run through the
// public facade and checks the recorded history and step accounting.
func TestRoundRobinRunsToQuiescence(t *testing.T) {
	res := run.Run(config(&counter{}, &run.RoundRobin{}))
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if res.Reason != run.StopQuiescent {
		t.Fatalf("run stopped for %v, want quiescence", res.Reason)
	}
	if got := len(res.H); got != 6 {
		t.Fatalf("recorded %d events, want 6 (3 invocations + 3 responses): %s", got, res.H)
	}
	if res.Steps != res.StepsBy[1]+res.StepsBy[2] {
		t.Errorf("steps %d != per-process sum %d+%d", res.Steps, res.StepsBy[1], res.StepsBy[2])
	}
	if len(res.Accesses) != len(res.Schedule) {
		t.Errorf("access log has %d entries for %d decisions", len(res.Accesses), len(res.Schedule))
	}
}

// TestFixedReplayReproducesHistory checks the facade's replay guarantee:
// re-running a recorded schedule yields the identical history.
func TestFixedReplayReproducesHistory(t *testing.T) {
	first := run.Run(config(&counter{}, &run.RoundRobin{}))
	if first.Err != nil {
		t.Fatalf("run failed: %v", first.Err)
	}
	replay := run.Run(config(&counter{}, run.Fixed(first.Schedule)))
	if replay.Err != nil {
		t.Fatalf("replay failed: %v", replay.Err)
	}
	if !reflect.DeepEqual(first.H, replay.H) {
		t.Errorf("replayed history differs:\n first: %s\nreplay: %s", first.H, replay.H)
	}
}

// TestSoloSchedulesOneProcess checks Solo grants steps only to its
// process.
func TestSoloSchedulesOneProcess(t *testing.T) {
	res := run.Run(config(&counter{}, run.Solo(2)))
	if res.Err != nil {
		t.Fatalf("run failed: %v", res.Err)
	}
	if res.StepsBy[1] != 0 || res.StepsBy[2] == 0 {
		t.Errorf("solo(2) granted p1=%d p2=%d steps", res.StepsBy[1], res.StepsBy[2])
	}
	for _, e := range res.H {
		if e.Proc != 2 {
			t.Errorf("solo(2) recorded an event of process %d: %s", e.Proc, e)
		}
	}
}
