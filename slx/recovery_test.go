package slx_test

// Cross-checks of crash–recovery exploration through the public API:
// for recoverable objects — clean and seeded-bug alike — Explore with
// WithRecoveries on the default incremental engine must return the
// identical verdict, statistics and witness as Explore forced onto
// from-root replay, composed with POR, the state cache and the
// work-stealing scheduler; and the whole tree must be deterministic
// across repeated runs (recovery epochs are part of the fingerprint).
// Run with -race in CI.

import (
	"reflect"
	"testing"

	"repro/internal/service"
	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
)

// recRegister is porRegister plus the Recoverable hooks: no volatile
// state (CrashVolatile is a no-op) and a one-window recovery routine
// that re-reads the register before the process rejoins its workload.
// It is strictly linearizable under any crash/recovery pattern, making
// it the clean recovery parity case.
type recRegister struct{ porRegister }

func (r *recRegister) CrashVolatile() {}

func (r *recRegister) RecoverFrame() run.Frame { return &recRegisterFrame{r: r} }

// recRegisterFrame is the recovery routine: one read window.
type recRegisterFrame struct{ r *recRegister }

// Step implements run.Frame.
func (f *recRegisterFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	p.Access("r", false)
	p.Observe(f.r.v)
	return nil, run.StepDone
}

// Fork implements run.Frame: the frame holds no mutable state.
func (f *recRegisterFrame) Fork() run.Frame { return f }

// recNilRegister exercises the other recovery shape: a Recoverable
// object whose RecoverFrame is nil, so a recovered process re-consults
// its environment immediately, with no routine in between.
type recNilRegister struct{ porRegister }

func (r *recNilRegister) CrashVolatile() {}

func (r *recNilRegister) RecoverFrame() run.Frame { return nil }

// recoveryCases is the object table of the recovery cross-check. The
// violating case is the registered durablequeue service target — the
// roll-forward queue whose duplicate needs crash+recover — so the
// parity gate runs against exactly what slxd serves.
func recoveryCases() map[string]struct {
	opts  []slx.Option
	props []slx.Property
} {
	durable, ok := service.LookupTarget("durablequeue")
	if !ok {
		panic("durablequeue target not registered")
	}
	return map[string]struct {
		opts  []slx.Option
		props []slx.Property
	}{
		"rec-register/routine": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return &recRegister{porRegister{v: 0}} }),
				slx.WithEnv(regEnv(2)),
				slx.WithProcs(2),
				slx.WithDepth(6),
				slx.WithCrashes(1),
				slx.WithRecoveries(1),
			},
			props: []slx.Property{check.StrictLinearizability(check.RegisterSpec{Initial: 0})},
		},
		"rec-register/nil-frame": {
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return &recNilRegister{porRegister{v: 0}} }),
				slx.WithEnv(regEnv(2)),
				slx.WithProcs(2),
				slx.WithDepth(6),
				slx.WithCrashes(1),
				slx.WithRecoveries(1),
			},
			props: []slx.Property{check.StrictLinearizability(check.RegisterSpec{Initial: 0})},
		},
		"non-recoverable/durable": {
			// No Recoverable hooks at all: every object cell is durable and
			// recovery is a bare re-spawn.
			opts: []slx.Option{
				slx.WithObject(func() run.Object { return &porRegister{v: 0} }),
				slx.WithEnv(regEnv(2)),
				slx.WithProcs(2),
				slx.WithDepth(6),
				slx.WithCrashes(1),
				slx.WithRecoveries(1),
			},
			props: []slx.Property{check.StrictLinearizability(check.RegisterSpec{Initial: 0})},
		},
		"durablequeue/violation": {
			opts: append(durable.Options(),
				slx.WithDepth(12),
				slx.WithCrashes(1),
				slx.WithRecoveries(1),
			),
			props: []slx.Property{durable.Property()},
		},
	}
}

// TestRecoveryVerdictParity is the recovery twin of
// TestIncrementalVerdictParity: identical verdicts, tree statistics and
// (at one worker) witness schedules between the incremental and replay
// engines, for every recovery case under every composition, and a
// violating witness that replays — crash and recover decisions
// included — to the same verdict.
func TestRecoveryVerdictParity(t *testing.T) {
	for name, tc := range recoveryCases() {
		tc := tc
		for _, combo := range incrementalCombos() {
			combo := combo
			t.Run(name+"/"+combo.name, func(t *testing.T) {
				base := append(tc.opts[:len(tc.opts):len(tc.opts)], combo.opts...)
				base = base[:len(base):len(base)]
				inc, err := slx.New(base...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("incremental explore: %v", err)
				}
				rep, err := slx.New(append(base, slx.WithReplayExecution())...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("replay explore: %v", err)
				}
				if inc.OK() != rep.OK() {
					t.Fatalf("verdicts differ: incremental OK=%v, replay OK=%v\nincremental: %s\nreplay: %s",
						inc.OK(), rep.OK(), inc, rep)
				}
				if inc.Workers == 1 {
					if inc.Prefixes != rep.Prefixes || inc.Pruned != rep.Pruned || inc.CacheHits != rep.CacheHits {
						t.Errorf("trees differ: incremental %d prefixes/%d pruned/%d hits, replay %d/%d/%d",
							inc.Prefixes, inc.Pruned, inc.CacheHits, rep.Prefixes, rep.Pruned, rep.CacheHits)
					}
					if !reflect.DeepEqual(inc.Witness(), rep.Witness()) {
						t.Errorf("witnesses differ: incremental %v, replay %v", inc.Witness(), rep.Witness())
					}
				}
				if !inc.OK() {
					iv := inc.Failures()[0]
					if iv.Witness == nil {
						t.Fatal("incremental failure carries no witness")
					}
					replayed, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Replay(iv.Witness, tc.props...)
					if err != nil {
						t.Fatalf("witness replay: %v", err)
					}
					if replayed.OK() {
						t.Errorf("incremental witness %v replayed clean", iv.Witness)
					}
				}
			})
		}
	}
}

// TestRecoveryNeedsBothBudgets pins the acceptance claim of the
// durablequeue scenario in both directions: the violation is reachable
// with crashes+recoveries and provably absent — full exhaustive
// exploration, same depth — under crashes alone or no failures at all.
func TestRecoveryNeedsBothBudgets(t *testing.T) {
	durable, _ := service.LookupTarget("durablequeue")
	explore := func(extra ...slx.Option) *slx.Report {
		t.Helper()
		opts := append(durable.Options(), slx.WithDepth(12))
		rep, err := slx.New(append(opts, extra...)...).Explore(durable.Property())
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		return rep
	}
	if rep := explore(); !rep.OK() {
		t.Fatalf("crash-free exploration must be clean: %s", rep.Failures()[0].Reason)
	}
	if rep := explore(slx.WithCrashes(1)); !rep.OK() {
		t.Fatalf("crash-only exploration must be clean: %s", rep.Failures()[0].Reason)
	}
	if rep := explore(slx.WithCrashes(1), slx.WithRecoveries(1)); rep.OK() {
		t.Fatal("crash+recover exploration must find the roll-forward duplicate")
	}
}

// TestRecoveryTreeDeterministic pins fingerprint composition: recovery
// epochs and the crash set are part of the state digest, so repeated
// cached explorations of the same recovery scenario enumerate the
// identical tree — same prefixes, distinct states, cache hits and
// witness, run after run.
func TestRecoveryTreeDeterministic(t *testing.T) {
	for name, tc := range recoveryCases() {
		tc := tc
		t.Run(name, func(t *testing.T) {
			mk := func() *slx.Report {
				rep, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
					slx.WithPOR(), slx.WithStateCache())...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("explore: %v", err)
				}
				return rep
			}
			a, b := mk(), mk()
			if a.Prefixes != b.Prefixes || a.DistinctStates != b.DistinctStates || a.CacheHits != b.CacheHits || a.Pruned != b.Pruned {
				t.Errorf("runs differ: %d/%d/%d/%d vs %d/%d/%d/%d (prefixes/states/hits/pruned)",
					a.Prefixes, a.DistinctStates, a.CacheHits, a.Pruned,
					b.Prefixes, b.DistinctStates, b.CacheHits, b.Pruned)
			}
			if !reflect.DeepEqual(a.Witness(), b.Witness()) {
				t.Errorf("witnesses differ across runs: %v vs %v", a.Witness(), b.Witness())
			}
		})
	}
}
