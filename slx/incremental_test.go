package slx_test

// Cross-checks of the incremental execution engine through the public
// API: for every example object — clean and seeded-bug alike — Explore
// on the default incremental engine must return the identical verdict,
// statistics and witness as Explore forced onto from-root replay
// (WithReplayExecution), composed with POR, the state cache and the
// work-stealing scheduler. This is the acceptance gate of the session
// engine's soundness story (see DESIGN.md "Incremental execution"):
// both engines enumerate the identical tree, so every divergence is an
// engine bug, never a property change. Run with -race in CI.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
)

// incrementalCombos are the feature compositions each example object is
// cross-checked under. Workers > 1 is checked on a single composition
// (witnesses there are compared by replayability, not identity).
func incrementalCombos() []struct {
	name string
	opts []slx.Option
} {
	return []struct {
		name string
		opts []slx.Option
	}{
		{"plain", nil},
		{"por", []slx.Option{slx.WithPOR()}},
		{"cache", []slx.Option{slx.WithStateCache()}},
		{"por+cache", []slx.Option{slx.WithPOR(), slx.WithStateCache()}},
		{"por+cache+workers4", []slx.Option{slx.WithPOR(), slx.WithStateCache(), slx.WithWorkers(4)}},
	}
}

// TestIncrementalVerdictParity is the public-API acceptance gate of the
// incremental engine: identical verdicts, prefix counts, pruning and
// cache statistics, and (at one worker) identical witness schedules,
// against the replay engine, for every example object under every
// composition.
func TestIncrementalVerdictParity(t *testing.T) {
	for name, tc := range porCases() {
		tc := tc
		for _, combo := range incrementalCombos() {
			combo := combo
			t.Run(name+"/"+combo.name, func(t *testing.T) {
				base := append(tc.opts[:len(tc.opts):len(tc.opts)], combo.opts...)
				base = base[:len(base):len(base)]
				inc, err := slx.New(base...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("incremental explore: %v", err)
				}
				rep, err := slx.New(append(base, slx.WithReplayExecution())...).Explore(tc.props...)
				if err != nil {
					t.Fatalf("replay explore: %v", err)
				}
				if inc.OK() != rep.OK() {
					t.Fatalf("verdicts differ: incremental OK=%v, replay OK=%v\nincremental: %s\nreplay: %s",
						inc.OK(), rep.OK(), inc, rep)
				}
				workers := inc.Workers > 1
				if !workers {
					// Sequential exploration is fully deterministic: both
					// engines must enumerate the identical tree.
					if inc.Prefixes != rep.Prefixes || inc.Pruned != rep.Pruned || inc.CacheHits != rep.CacheHits {
						t.Errorf("trees differ: incremental %d prefixes/%d pruned/%d hits, replay %d/%d/%d",
							inc.Prefixes, inc.Pruned, inc.CacheHits, rep.Prefixes, rep.Pruned, rep.CacheHits)
					}
					if inc.EventScans != rep.EventScans {
						t.Errorf("event scans differ: incremental %d, replay %d", inc.EventScans, rep.EventScans)
					}
					if !reflect.DeepEqual(inc.Witness(), rep.Witness()) {
						t.Errorf("witnesses differ: incremental %v, replay %v", inc.Witness(), rep.Witness())
					}
				}
				if !inc.OK() {
					iv, rv := inc.Failures()[0], rep.Failures()[0]
					if iv.Property != rv.Property {
						t.Errorf("different properties failed: incremental %q, replay %q", iv.Property, rv.Property)
					}
					if iv.Witness == nil {
						t.Error("incremental failure carries no witness")
					}
					// The witness must reproduce the violation on a plain
					// replay regardless of which engine (or worker timing)
					// found it.
					replayed, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Replay(iv.Witness, tc.props...)
					if err != nil {
						t.Fatalf("witness replay: %v", err)
					}
					if replayed.OK() {
						t.Errorf("incremental witness %v replayed clean", iv.Witness)
					}
				}
				// Every example object carries the snapshot hook, so the
				// incremental engine must actually engage: strictly fewer
				// sim steps than the quadratic replay engine.
				if !workers && inc.Prefixes > 1 && inc.SimSteps >= rep.SimSteps {
					t.Errorf("incremental engine did not reduce sim steps: %d vs replay %d", inc.SimSteps, rep.SimSteps)
				}
			})
		}
	}
}

// noSnapRegister is porRegister without the snapshot hook: exploration
// must fall back to replay execution transparently.
type noSnapRegister struct{ v hist.Value }

func (r *noSnapRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() { p.Access("r", false); out = r.v; p.Observe(out) })
	case "write":
		p.Exec("write", func() { p.Access("r", true); r.v = inv.Arg; out = hist.OK })
	}
	return out
}

func (r *noSnapRegister) Footprints() bool { return true }

// TestIncrementalFallbackTransparent pins the fallback contract: an
// object without run.Snapshottable explores by from-root replay with or
// without WithReplayExecution — identical trees, identical (quadratic)
// step counts — so soundness never depends on the hook.
func TestIncrementalFallbackTransparent(t *testing.T) {
	if run.CanSnapshot(&noSnapRegister{}) {
		t.Fatal("noSnapRegister must not report snapshot support")
	}
	mk := func(extra ...slx.Option) *slx.Report {
		opts := []slx.Option{
			slx.WithObject(func() run.Object { return &noSnapRegister{v: 0} }),
			slx.WithEnv(regEnv(2)),
			slx.WithProcs(2),
			slx.WithDepth(6),
		}
		rep, err := slx.New(append(opts, extra...)...).Explore(check.Linearizability(check.RegisterSpec{Initial: 0}))
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		return rep
	}
	def := mk()
	forced := mk(slx.WithReplayExecution())
	if def.Prefixes != forced.Prefixes || def.SimSteps != forced.SimSteps || def.Resims != forced.Resims {
		t.Errorf("fallback differs from forced replay: %d/%d/%d vs %d/%d/%d",
			def.Prefixes, def.SimSteps, def.Resims, forced.Prefixes, forced.SimSteps, forced.Resims)
	}
	if !def.OK() || !forced.OK() {
		t.Errorf("register must be linearizable (default OK=%v, forced OK=%v)", def.OK(), forced.OK())
	}
	if def.SimSteps <= def.Prefixes {
		t.Errorf("replay fallback should show quadratic steps (%d) above prefixes (%d)", def.SimSteps, def.Prefixes)
	}
}

// viewDependentEnv issues invocations that depend on the observed view:
// each process writes the current history length (different in every
// interleaving), then reads, then stops. Both engines must consult the
// environment inside the same step window with the same view — a session
// restore that replayed the environment against a stale or rebuilt view
// would pick different invocations and change the explored tree.
func viewDependentEnv() run.Environment {
	return run.EnvironmentFunc(func(proc int, v *run.View) (run.Invocation, bool) {
		invoked := 0
		for _, e := range v.H {
			if e.Proc == proc && e.Kind == hist.KindInvoke {
				invoked++
			}
		}
		switch invoked {
		case 0:
			return run.Invocation{Op: "write", Arg: 100*proc + len(v.H)}, true
		case 1:
			return run.Invocation{Op: "read"}, true
		}
		return run.Invocation{}, false
	})
}

// TestContinuationParityViewEnvAndCrashes pins the continuation engine
// against the replay oracle on the two execution features most easily
// broken by snapshot restore: view-dependent environments (the chosen
// invocation depends on the history at consult time) and crash
// branching (restores must resurrect pre-crash continuation frames).
// Run with -race in CI.
func TestContinuationParityViewEnvAndCrashes(t *testing.T) {
	base := []slx.Option{
		slx.WithObject(func() run.Object { return &porRegister{v: 0} }),
		slx.WithEnv(viewDependentEnv),
		slx.WithProcs(3),
		slx.WithDepth(6),
		slx.WithCrashes(1),
	}
	props := []slx.Property{check.Linearizability(check.RegisterSpec{Initial: 0})}
	inc, err := slx.New(base...).Explore(props...)
	if err != nil {
		t.Fatalf("continuation explore: %v", err)
	}
	rep, err := slx.New(append(base[:len(base):len(base)], slx.WithReplayExecution())...).Explore(props...)
	if err != nil {
		t.Fatalf("replay explore: %v", err)
	}
	if inc.OK() != rep.OK() {
		t.Fatalf("verdicts differ: continuation OK=%v, replay OK=%v", inc.OK(), rep.OK())
	}
	if inc.Prefixes != rep.Prefixes || inc.EventScans != rep.EventScans {
		t.Errorf("trees differ: continuation %d prefixes/%d scans, replay %d/%d",
			inc.Prefixes, inc.EventScans, rep.Prefixes, rep.EventScans)
	}
	if !reflect.DeepEqual(inc.Witness(), rep.Witness()) {
		t.Errorf("witnesses differ: continuation %v, replay %v", inc.Witness(), rep.Witness())
	}
	if inc.SimSteps >= rep.SimSteps {
		t.Errorf("continuation engine did not reduce sim steps: %d vs replay %d", inc.SimSteps, rep.SimSteps)
	}
}

// TestExplorePoolReuseParallelStress hammers the engine's recycling
// paths — pooled sessions and marks, recycled node infos, released
// monitor sets and their sync.Pool-backed forks — by running violating
// and clean explorations concurrently, with work-stealing workers
// inside each exploration, against pools shared process-wide. Any
// cross-branch or cross-exploration state bleed shows up as a flipped
// verdict (or a -race report in CI, which runs this with -race).
func TestExplorePoolReuseParallelStress(t *testing.T) {
	cases := []string{"racy-lock/violation", "lossy-register/violation", "register/linearizability", "commit-adopt/crashes+workers"}
	type want struct {
		name string
		ok   bool
	}
	wants := make([]want, 0, len(cases))
	for _, name := range cases {
		tc := porCases()[name]
		rep, err := slx.New(tc.opts[:len(tc.opts):len(tc.opts)]...).Explore(tc.props...)
		if err != nil {
			t.Fatalf("%s: sequential explore: %v", name, err)
		}
		wants = append(wants, want{name: name, ok: rep.OK()})
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(cases)*8)
	for round := 0; round < 8; round++ {
		for _, w := range wants {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				tc := porCases()[w.name]
				rep, err := slx.New(append(tc.opts[:len(tc.opts):len(tc.opts)],
					slx.WithPOR(), slx.WithStateCache(), slx.WithWorkers(4))...).Explore(tc.props...)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", w.name, err)
					return
				}
				if rep.OK() != w.ok {
					errs <- fmt.Errorf("%s: verdict flipped under pooled parallel reuse: got OK=%v, want %v", w.name, rep.OK(), w.ok)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
