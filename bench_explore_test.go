package repro_test

// Exploration-throughput benchmarks for the incremental monitor redesign:
// a depth-7, 3-process linearizability exploration through the public slx
// API, on the default monitor path and on the legacy batch path
// (slx.WithBatchExplore). The first monitor iteration asserts the
// redesign's acceptance bar — at least 2× fewer property-event scans than
// batch — so a regression fails the benchmark smoke run, not just a
// human reading EXPERIMENTS.md.

import (
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
)

// benchRegister is a linearizable read/write register: every access is a
// single atomic step through the scheduler handshake.
type benchRegister struct{ v hist.Value }

func (r *benchRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() { out = r.v })
	case "write":
		p.Exec("write", func() { r.v = inv.Arg; out = hist.OK })
	}
	return out
}

// linExploreChecker is the depth-7, 3-process register workload: each
// process writes its id, then reads.
func linExploreChecker(extra ...slx.Option) *slx.Checker {
	opts := []slx.Option{
		slx.WithObject(func() run.Object { return &benchRegister{v: 0} }),
		slx.WithEnv(func() run.Environment {
			return run.Script(map[int][]run.Invocation{
				1: {{Op: "write", Arg: 1}, {Op: "read"}},
				2: {{Op: "write", Arg: 2}, {Op: "read"}},
				3: {{Op: "write", Arg: 3}, {Op: "read"}},
			})
		}),
		slx.WithProcs(3),
		slx.WithDepth(7),
	}
	return slx.New(append(opts, extra...)...)
}

func linProp() slx.Property { return check.Linearizability(check.RegisterSpec{Initial: 0}) }

// TestExploreLinearizabilityScanReduction is the acceptance check of the
// monitor redesign: on the depth-7, 3-process linearizability
// exploration, the monitor path must judge the same tree with at least
// 2× fewer property-event scans than the batch path.
func TestExploreLinearizabilityScanReduction(t *testing.T) {
	mon, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("monitor explore: %v", err)
	}
	batch, err := linExploreChecker(slx.WithBatchExplore()).Explore(linProp())
	if err != nil {
		t.Fatalf("batch explore: %v", err)
	}
	if !mon.OK() || !batch.OK() {
		t.Fatalf("register must be linearizable on every prefix (monitor OK=%v, batch OK=%v)", mon.OK(), batch.OK())
	}
	if mon.Prefixes != batch.Prefixes || mon.SimSteps != batch.SimSteps {
		t.Fatalf("paths explored different trees: monitor %d/%d, batch %d/%d",
			mon.Prefixes, mon.SimSteps, batch.Prefixes, batch.SimSteps)
	}
	if mon.EventScans*2 > batch.EventScans {
		t.Fatalf("monitor path scanned %d property events, want ≤ half of batch's %d",
			mon.EventScans, batch.EventScans)
	}
	t.Logf("depth-7 3-proc linearizability: prefixes=%d simSteps=%d scans monitor=%d batch=%d (%.1fx fewer)",
		mon.Prefixes, mon.SimSteps, mon.EventScans, batch.EventScans,
		float64(batch.EventScans)/float64(mon.EventScans))
}

// BenchmarkExploreLinearizabilityMonitor measures the default
// incremental path.
func BenchmarkExploreLinearizabilityMonitor(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker())
}

// BenchmarkExploreLinearizabilityBatch measures the legacy batch path
// for comparison.
func BenchmarkExploreLinearizabilityBatch(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithBatchExplore()))
}

func benchExploreLinearizability(b *testing.B, c *slx.Checker) {
	prefixes := 0
	for i := 0; i < b.N; i++ {
		rep, err := c.Explore(linProp())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("violation: %s", rep.Failures()[0])
		}
		if i == 0 {
			prefixes = rep.Prefixes
			b.ReportMetric(float64(rep.Prefixes), "prefixes")
			b.ReportMetric(float64(rep.SimSteps), "simSteps")
			b.ReportMetric(float64(rep.EventScans), "eventScans")
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*prefixes)/sec, "prefixes/sec")
	}
}
