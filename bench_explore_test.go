package repro_test

// Exploration-throughput benchmarks for the incremental monitor redesign
// and for sleep-set partial-order reduction: a depth-7, 3-process
// linearizability exploration through the public slx API, on the default
// monitor path, on the legacy batch path (slx.WithBatchExplore), and
// with POR (slx.WithPOR). The first monitor iteration asserts the
// monitor redesign's acceptance bar — at least 2× fewer property-event
// scans than batch — and TestExplorePORPrefixReduction asserts POR's: at
// least 2× fewer explored prefixes than full exploration, with identical
// verdicts. Regressions therefore fail the benchmark smoke run, not
// just a human reading EXPERIMENTS.md.

import (
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
)

// benchRegister is a linearizable read/write register: every access is a
// single atomic step through the scheduler handshake, declared to the
// footprint tracker so POR can commute independent steps and observed
// and fingerprinted so the state cache can deduplicate configurations.
type benchRegister struct{ v hist.Value }

func (r *benchRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() { p.Access("r", false); out = r.v; p.Observe(out) })
	case "write":
		p.Exec("write", func() { p.Access("r", true); r.v = inv.Arg; out = hist.OK })
	}
	return out
}

// Footprints implements run.Footprinted: the register is the only shared
// state and both operations declare their access.
func (r *benchRegister) Footprints() bool { return true }

// Fingerprint implements run.Fingerprintable: the single value, compared
// only by content, is the whole shared state.
func (r *benchRegister) Fingerprint(f *run.Fingerprinter) {
	f.Str("r")
	f.Val(r.v)
}

// linExploreChecker is the depth-7, 3-process register workload: each
// process writes its id, then reads.
func linExploreChecker(extra ...slx.Option) *slx.Checker {
	opts := []slx.Option{
		slx.WithObject(func() run.Object { return &benchRegister{v: 0} }),
		slx.WithEnv(func() run.Environment {
			return run.Script(map[int][]run.Invocation{
				1: {{Op: "write", Arg: 1}, {Op: "read"}},
				2: {{Op: "write", Arg: 2}, {Op: "read"}},
				3: {{Op: "write", Arg: 3}, {Op: "read"}},
			})
		}),
		slx.WithProcs(3),
		slx.WithDepth(7),
	}
	return slx.New(append(opts, extra...)...)
}

func linProp() slx.Property { return check.Linearizability(check.RegisterSpec{Initial: 0}) }

// TestExploreLinearizabilityScanReduction is the acceptance check of the
// monitor redesign: on the depth-7, 3-process linearizability
// exploration, the monitor path must judge the same tree with at least
// 2× fewer property-event scans than the batch path.
func TestExploreLinearizabilityScanReduction(t *testing.T) {
	mon, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("monitor explore: %v", err)
	}
	batch, err := linExploreChecker(slx.WithBatchExplore()).Explore(linProp())
	if err != nil {
		t.Fatalf("batch explore: %v", err)
	}
	if !mon.OK() || !batch.OK() {
		t.Fatalf("register must be linearizable on every prefix (monitor OK=%v, batch OK=%v)", mon.OK(), batch.OK())
	}
	if mon.Prefixes != batch.Prefixes || mon.SimSteps != batch.SimSteps {
		t.Fatalf("paths explored different trees: monitor %d/%d, batch %d/%d",
			mon.Prefixes, mon.SimSteps, batch.Prefixes, batch.SimSteps)
	}
	if mon.EventScans*2 > batch.EventScans {
		t.Fatalf("monitor path scanned %d property events, want ≤ half of batch's %d",
			mon.EventScans, batch.EventScans)
	}
	t.Logf("depth-7 3-proc linearizability: prefixes=%d simSteps=%d scans monitor=%d batch=%d (%.1fx fewer)",
		mon.Prefixes, mon.SimSteps, mon.EventScans, batch.EventScans,
		float64(batch.EventScans)/float64(mon.EventScans))
}

// TestExplorePORPrefixReduction is the acceptance check of sleep-set
// partial-order reduction: on the depth-7, 3-process linearizability
// exploration, POR must explore at most half the prefixes of the full
// tree, reach the same verdict, and account for every skipped subtree in
// Report.Pruned.
func TestExplorePORPrefixReduction(t *testing.T) {
	full, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	por, err := linExploreChecker(slx.WithPOR()).Explore(linProp())
	if err != nil {
		t.Fatalf("POR explore: %v", err)
	}
	if !full.OK() || !por.OK() {
		t.Fatalf("register must be linearizable on every prefix (full OK=%v, POR OK=%v)", full.OK(), por.OK())
	}
	if full.Pruned != 0 {
		t.Fatalf("full exploration must not prune, pruned %d subtrees", full.Pruned)
	}
	if por.Pruned == 0 {
		t.Fatal("POR pruned nothing on a workload with independent steps")
	}
	if por.Prefixes*2 > full.Prefixes {
		t.Fatalf("POR explored %d prefixes, want ≤ half of full exploration's %d", por.Prefixes, full.Prefixes)
	}
	t.Logf("depth-7 3-proc linearizability: prefixes full=%d por=%d (%.1fx fewer), pruned=%d, simSteps full=%d por=%d",
		full.Prefixes, por.Prefixes, float64(full.Prefixes)/float64(por.Prefixes), por.Pruned, full.SimSteps, por.SimSteps)
}

// TestExploreCacheReduction is the acceptance check of the state cache:
// on the depth-7, 3-process linearizability exploration, caching must
// explore at most half the prefixes of the full tree, reach the same
// verdict, and account for every skipped subtree in Report.CacheHits —
// and it must still compound with POR (strictly fewer prefixes than POR
// alone; the margin is smaller there because POR already removes many
// of the convergent interleavings the cache would merge, and a cache
// hit under POR additionally requires the stored sleep set to be
// covered by the current one).
func TestExploreCacheReduction(t *testing.T) {
	full, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	cached, err := linExploreChecker(slx.WithStateCache()).Explore(linProp())
	if err != nil {
		t.Fatalf("cached explore: %v", err)
	}
	if !full.OK() || !cached.OK() {
		t.Fatalf("register must be linearizable on every prefix (full OK=%v, cached OK=%v)", full.OK(), cached.OK())
	}
	if full.CacheHits != 0 {
		t.Fatalf("cache off must not hit, got %d", full.CacheHits)
	}
	if cached.CacheHits == 0 {
		t.Fatal("cache hit nothing on a workload full of convergent interleavings")
	}
	if cached.Prefixes*2 > full.Prefixes {
		t.Fatalf("cached exploration explored %d prefixes, want ≤ half of full exploration's %d", cached.Prefixes, full.Prefixes)
	}
	por, err := linExploreChecker(slx.WithPOR()).Explore(linProp())
	if err != nil {
		t.Fatalf("POR explore: %v", err)
	}
	both, err := linExploreChecker(slx.WithPOR(), slx.WithStateCache()).Explore(linProp())
	if err != nil {
		t.Fatalf("POR+cache explore: %v", err)
	}
	if !por.OK() || !both.OK() {
		t.Fatalf("register must be linearizable on every prefix (por OK=%v, por+cache OK=%v)", por.OK(), both.OK())
	}
	if both.CacheHits == 0 || both.Prefixes >= por.Prefixes {
		t.Fatalf("POR+cache must still deduplicate on top of POR: explored %d prefixes (POR-only %d), %d hits",
			both.Prefixes, por.Prefixes, both.CacheHits)
	}
	t.Logf("depth-7 3-proc linearizability: prefixes full=%d cache=%d (%.1fx fewer, %d hits), por=%d por+cache=%d (%.1fx fewer, %d hits)",
		full.Prefixes, cached.Prefixes, float64(full.Prefixes)/float64(cached.Prefixes), cached.CacheHits,
		por.Prefixes, both.Prefixes, float64(por.Prefixes)/float64(both.Prefixes), both.CacheHits)
}

// BenchmarkExploreLinearizabilityMonitor measures the default
// incremental path.
func BenchmarkExploreLinearizabilityMonitor(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker())
}

// BenchmarkExploreLinearizabilityBatch measures the legacy batch path
// for comparison.
func BenchmarkExploreLinearizabilityBatch(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithBatchExplore()))
}

// BenchmarkExploreLinearizabilityPOR measures the monitor path with
// sleep-set partial-order reduction.
func BenchmarkExploreLinearizabilityPOR(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithPOR()))
}

// BenchmarkExploreLinearizabilityCache measures the monitor path with
// state-fingerprint deduplication.
func BenchmarkExploreLinearizabilityCache(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithStateCache()))
}

// BenchmarkExploreLinearizabilityCachePOR measures the composition of
// the state cache with partial-order reduction.
func BenchmarkExploreLinearizabilityCachePOR(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithPOR(), slx.WithStateCache()))
}

// BenchmarkExploreLinearizabilityWorkers4 measures the work-stealing
// scheduler at 4 workers on the plain monitor path (its wall-clock is
// compared against the retired first-level-split scheduler's committed
// numbers in BENCH_explore.json).
func BenchmarkExploreLinearizabilityWorkers4(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithWorkers(4)))
}

func benchExploreLinearizability(b *testing.B, c *slx.Checker) {
	prefixes := 0
	for i := 0; i < b.N; i++ {
		rep, err := c.Explore(linProp())
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("violation: %s", rep.Failures()[0])
		}
		if i == 0 {
			prefixes = rep.Prefixes
			b.ReportMetric(float64(rep.Prefixes), "prefixes")
			b.ReportMetric(float64(rep.SimSteps), "simSteps")
			b.ReportMetric(float64(rep.EventScans), "eventScans")
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*prefixes)/sec, "prefixes/sec")
	}
}
