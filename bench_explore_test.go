package repro_test

// Exploration-throughput benchmarks for the incremental execution
// engine, the incremental monitor redesign and sleep-set partial-order
// reduction: a depth-7, 3-process linearizability exploration through
// the public slx API — on the default path (incremental sessions +
// incremental monitors), on the retired from-root replay engine
// (slx.WithReplayExecution), on the legacy batch property path
// (slx.WithBatchExplore), and with POR/cache/workers. Each acceptance
// bar is asserted by a deterministic test, so regressions fail the
// benchmark smoke run, not just a human reading EXPERIMENTS.md:
// TestExploreContinuationSteps gates the continuation engine's
// zero-resimulation contract, TestExploreLinearizabilityScanReduction
// the monitor redesign's event scans, TestExplorePORPrefixReduction and
// TestExploreCacheReduction the prefix reductions. All benchmarks
// report -benchmem allocation figures (the committed numbers live in
// BENCH_explore.json's allocs_per_op/bytes_per_op fields, which the
// bench smoke run enforces as hard gates via tools/benchtrend).

import (
	"testing"

	"repro/slx"
	"repro/slx/check"
	"repro/slx/hist"
	"repro/slx/run"
)

// benchRegister is a linearizable read/write register: every access is a
// single atomic step, declared to the footprint tracker so POR can
// commute independent steps, observed and fingerprinted so the state
// cache can deduplicate configurations, and snapshottable + stepped so
// exploration runs on the continuation session engine.
type benchRegister struct {
	v hist.Value
	// frames memoizes the continuation frames by invocation: frames are
	// immutable (Fork returns the receiver), so one frame per distinct
	// invocation serves every node of the exploration tree — Begin on
	// the hot path allocates nothing after warmup.
	frames map[run.Invocation]*benchRegisterFrame
}

func (r *benchRegister) Apply(p *run.Proc, inv run.Invocation) hist.Value {
	var out hist.Value
	switch inv.Op {
	case "read":
		p.Exec("read", func() {
			p.Access("r", false)
			out = r.v
			p.Observe(out)
		})
	case "write":
		p.Exec("write", func() {
			out = hist.OK
			p.Access("r", true)
			r.v = inv.Arg
		})
	}
	return out
}

// benchRegisterFrame is one in-flight operation: a single access window.
// The frame is immutable, so Fork returns the receiver.
type benchRegisterFrame struct {
	r   *benchRegister
	inv run.Invocation
}

// Begin implements run.Stepped.
func (r *benchRegister) Begin(p *run.Proc, inv run.Invocation) (run.Frame, hist.Value, run.StepStatus) {
	switch inv.Op {
	case "read", "write":
		f := r.frames[inv]
		if f == nil {
			if r.frames == nil {
				r.frames = make(map[run.Invocation]*benchRegisterFrame)
			}
			f = &benchRegisterFrame{r: r, inv: inv}
			r.frames[inv] = f
		}
		return f, nil, run.StepPaused
	}
	return nil, nil, run.StepDone
}

// Step implements run.Frame.
func (f *benchRegisterFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	if f.inv.Op == "read" {
		p.Access("r", false)
		out := f.r.v
		p.Observe(out)
		return out, run.StepDone
	}
	p.Access("r", true)
	f.r.v = f.inv.Arg
	return hist.OK, run.StepDone
}

// Fork implements run.Frame.
func (f *benchRegisterFrame) Fork() run.Frame { return f }

// Footprints implements run.Footprinted: the register is the only shared
// state and both operations declare their access.
func (r *benchRegister) Footprints() bool { return true }

// Fingerprint implements run.Fingerprintable: the single value, compared
// only by content, is the whole shared state.
func (r *benchRegister) Fingerprint(f *run.Fingerprinter) {
	f.Str("r")
	f.Val(r.v)
}

// Snapshot implements run.Snapshottable.
func (r *benchRegister) Snapshot() any { return r.v }

// Restore implements run.Snapshottable.
func (r *benchRegister) Restore(s any) { r.v = s }

// linExploreChecker is the depth-7, 3-process register workload: each
// process writes its id, then reads.
func linExploreChecker(extra ...slx.Option) *slx.Checker {
	opts := []slx.Option{
		slx.WithObject(func() run.Object { return &benchRegister{v: 0} }),
		slx.WithEnv(func() run.Environment {
			return run.Script(map[int][]run.Invocation{
				1: {{Op: "write", Arg: 1}, {Op: "read"}},
				2: {{Op: "write", Arg: 2}, {Op: "read"}},
				3: {{Op: "write", Arg: 3}, {Op: "read"}},
			})
		}),
		slx.WithProcs(3),
		slx.WithDepth(7),
	}
	return slx.New(append(opts, extra...)...)
}

func linProp() slx.Property { return check.Linearizability(check.RegisterSpec{Initial: 0}) }

// TestExploreLinearizabilityScanReduction is the acceptance check of the
// monitor redesign: on the depth-7, 3-process linearizability
// exploration, the monitor path must judge the same tree with at least
// 2× fewer property-event scans than the batch path.
func TestExploreLinearizabilityScanReduction(t *testing.T) {
	mon, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("monitor explore: %v", err)
	}
	batch, err := linExploreChecker(slx.WithBatchExplore()).Explore(linProp())
	if err != nil {
		t.Fatalf("batch explore: %v", err)
	}
	if !mon.OK() || !batch.OK() {
		t.Fatalf("register must be linearizable on every prefix (monitor OK=%v, batch OK=%v)", mon.OK(), batch.OK())
	}
	if mon.Prefixes != batch.Prefixes || mon.SimSteps != batch.SimSteps {
		t.Fatalf("paths explored different trees: monitor %d/%d, batch %d/%d",
			mon.Prefixes, mon.SimSteps, batch.Prefixes, batch.SimSteps)
	}
	if mon.EventScans*2 > batch.EventScans {
		t.Fatalf("monitor path scanned %d property events, want ≤ half of batch's %d",
			mon.EventScans, batch.EventScans)
	}
	t.Logf("depth-7 3-proc linearizability: prefixes=%d simSteps=%d scans monitor=%d batch=%d (%.1fx fewer)",
		mon.Prefixes, mon.SimSteps, mon.EventScans, batch.EventScans,
		float64(batch.EventScans)/float64(mon.EventScans))
}

// TestExplorePORPrefixReduction is the acceptance check of sleep-set
// partial-order reduction: on the depth-7, 3-process linearizability
// exploration, POR must explore at most half the prefixes of the full
// tree, reach the same verdict, and account for every skipped subtree in
// Report.Pruned.
func TestExplorePORPrefixReduction(t *testing.T) {
	full, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	por, err := linExploreChecker(slx.WithPOR()).Explore(linProp())
	if err != nil {
		t.Fatalf("POR explore: %v", err)
	}
	if !full.OK() || !por.OK() {
		t.Fatalf("register must be linearizable on every prefix (full OK=%v, POR OK=%v)", full.OK(), por.OK())
	}
	if full.Pruned != 0 {
		t.Fatalf("full exploration must not prune, pruned %d subtrees", full.Pruned)
	}
	if por.Pruned == 0 {
		t.Fatal("POR pruned nothing on a workload with independent steps")
	}
	if por.Prefixes*2 > full.Prefixes {
		t.Fatalf("POR explored %d prefixes, want ≤ half of full exploration's %d", por.Prefixes, full.Prefixes)
	}
	t.Logf("depth-7 3-proc linearizability: prefixes full=%d por=%d (%.1fx fewer), pruned=%d, simSteps full=%d por=%d",
		full.Prefixes, por.Prefixes, float64(full.Prefixes)/float64(por.Prefixes), por.Pruned, full.SimSteps, por.SimSteps)
}

// TestExploreContinuationSteps is the acceptance gate of the
// continuation execution engine, superseding the retired step-ratio
// gate (the old engine rebuilt in-flight operations by re-simulation
// after every restore and was gated at ≤2.0 total steps per prefix; the
// continuation engine restores control state by struct copy, so the
// bound is exact). On the depth-7, 3-process linearizability
// exploration: zero re-simulation steps, exactly one fresh simulator
// step per non-root prefix, and the from-root replay engine re-measured
// on the identical tree must still dominate by ≥2×. All counters are
// deterministic at one worker, so this gates in CI without wall-clock
// noise.
func TestExploreContinuationSteps(t *testing.T) {
	inc, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("incremental explore: %v", err)
	}
	rep, err := linExploreChecker(slx.WithReplayExecution()).Explore(linProp())
	if err != nil {
		t.Fatalf("replay explore: %v", err)
	}
	if !inc.OK() || !rep.OK() {
		t.Fatalf("register must be linearizable on every prefix (incremental OK=%v, replay OK=%v)", inc.OK(), rep.OK())
	}
	if inc.Prefixes != rep.Prefixes {
		t.Fatalf("engines explored different trees: incremental %d prefixes, replay %d", inc.Prefixes, rep.Prefixes)
	}
	if inc.Resims != 0 {
		t.Fatalf("continuation engine re-simulated %d steps; restores must be struct copies, never re-execution", inc.Resims)
	}
	if inc.SimSteps != inc.Prefixes-1 {
		t.Fatalf("continuation engine spent %d fresh steps over %d prefixes, want exactly one per non-root prefix (%d)",
			inc.SimSteps, inc.Prefixes, inc.Prefixes-1)
	}
	ratio := float64(inc.SimSteps) / float64(inc.Prefixes)
	repRatio := float64(rep.SimSteps) / float64(rep.Prefixes)
	if repRatio < 2*ratio {
		t.Fatalf("replay engine's %.2f steps per prefix no longer dominates incremental's %.2f: the benchmark stopped measuring what it claims",
			repRatio, ratio)
	}
	t.Logf("depth-7 3-proc linearizability: steps/prefix incremental=%.2f (sim %d, resim 0) vs replay=%.2f (sim %d), %d prefixes",
		ratio, inc.SimSteps, repRatio, rep.SimSteps, inc.Prefixes)
}

// TestExploreCacheReduction is the acceptance check of the state cache:
// on the depth-7, 3-process linearizability exploration, caching must
// explore at most half the prefixes of the full tree, reach the same
// verdict, and account for every skipped subtree in Report.CacheHits —
// and it must still compound with POR (strictly fewer prefixes than POR
// alone; the margin is smaller there because POR already removes many
// of the convergent interleavings the cache would merge, and a cache
// hit under POR additionally requires the stored sleep set to be
// covered by the current one).
func TestExploreCacheReduction(t *testing.T) {
	full, err := linExploreChecker().Explore(linProp())
	if err != nil {
		t.Fatalf("full explore: %v", err)
	}
	cached, err := linExploreChecker(slx.WithStateCache()).Explore(linProp())
	if err != nil {
		t.Fatalf("cached explore: %v", err)
	}
	if !full.OK() || !cached.OK() {
		t.Fatalf("register must be linearizable on every prefix (full OK=%v, cached OK=%v)", full.OK(), cached.OK())
	}
	if full.CacheHits != 0 {
		t.Fatalf("cache off must not hit, got %d", full.CacheHits)
	}
	if cached.CacheHits == 0 {
		t.Fatal("cache hit nothing on a workload full of convergent interleavings")
	}
	if cached.Prefixes*2 > full.Prefixes {
		t.Fatalf("cached exploration explored %d prefixes, want ≤ half of full exploration's %d", cached.Prefixes, full.Prefixes)
	}
	por, err := linExploreChecker(slx.WithPOR()).Explore(linProp())
	if err != nil {
		t.Fatalf("POR explore: %v", err)
	}
	both, err := linExploreChecker(slx.WithPOR(), slx.WithStateCache()).Explore(linProp())
	if err != nil {
		t.Fatalf("POR+cache explore: %v", err)
	}
	if !por.OK() || !both.OK() {
		t.Fatalf("register must be linearizable on every prefix (por OK=%v, por+cache OK=%v)", por.OK(), both.OK())
	}
	if both.CacheHits == 0 || both.Prefixes >= por.Prefixes {
		t.Fatalf("POR+cache must still deduplicate on top of POR: explored %d prefixes (POR-only %d), %d hits",
			both.Prefixes, por.Prefixes, both.CacheHits)
	}
	t.Logf("depth-7 3-proc linearizability: prefixes full=%d cache=%d (%.1fx fewer, %d hits), por=%d por+cache=%d (%.1fx fewer, %d hits)",
		full.Prefixes, cached.Prefixes, float64(full.Prefixes)/float64(cached.Prefixes), cached.CacheHits,
		por.Prefixes, both.Prefixes, float64(por.Prefixes)/float64(both.Prefixes), both.CacheHits)
}

// BenchmarkExploreLinearizabilityMonitor measures the default path:
// incremental monitors on the incremental execution engine.
func BenchmarkExploreLinearizabilityMonitor(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker())
}

// BenchmarkExploreLinearizabilityReplay measures the retired from-root
// replay engine (the pre-session baseline) for comparison.
func BenchmarkExploreLinearizabilityReplay(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithReplayExecution()))
}

// BenchmarkExploreLinearizabilityBatch measures the legacy batch path
// for comparison.
func BenchmarkExploreLinearizabilityBatch(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithBatchExplore()))
}

// BenchmarkExploreLinearizabilityPOR measures the monitor path with
// sleep-set partial-order reduction.
func BenchmarkExploreLinearizabilityPOR(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithPOR()))
}

// BenchmarkExploreLinearizabilityCache measures the monitor path with
// state-fingerprint deduplication.
func BenchmarkExploreLinearizabilityCache(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithStateCache()))
}

// BenchmarkExploreLinearizabilityCachePOR measures the composition of
// the state cache with partial-order reduction.
func BenchmarkExploreLinearizabilityCachePOR(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithPOR(), slx.WithStateCache()))
}

// BenchmarkExploreLinearizabilityWorkers4 measures the work-stealing
// scheduler at 4 workers on the plain monitor path (its wall-clock is
// compared against the retired first-level-split scheduler's committed
// numbers in BENCH_explore.json).
func BenchmarkExploreLinearizabilityWorkers4(b *testing.B) {
	benchExploreLinearizability(b, linExploreChecker(slx.WithWorkers(4)))
}

// benchRecRegister is benchRegister with the crash–recovery hooks: no
// volatile state (CrashVolatile wipes nothing) and a one-read-window
// recovery routine, so the benchmark exercises the recovery re-spawn
// machinery — crash decisions, recovery frames, epoch fingerprints —
// on an object that stays strictly linearizable throughout.
type benchRecRegister struct{ benchRegister }

func (r *benchRecRegister) CrashVolatile() {}

func (r *benchRecRegister) RecoverFrame() run.Frame { return &benchRecFrame{r: r} }

// benchRecFrame is the recovery routine: one read window.
type benchRecFrame struct{ r *benchRecRegister }

// Step implements run.Frame.
func (f *benchRecFrame) Step(p *run.Proc) (hist.Value, run.StepStatus) {
	p.Access("r", false)
	p.Observe(f.r.v)
	return nil, run.StepDone
}

// Fork implements run.Frame: the frame holds no mutable state.
func (f *benchRecFrame) Fork() run.Frame { return f }

// recExploreChecker is the crash–recovery twin of linExploreChecker:
// the same depth-7, 3-process register workload explored with one
// crash and one recovery in the failure budget.
func recExploreChecker(extra ...slx.Option) *slx.Checker {
	opts := []slx.Option{
		slx.WithObject(func() run.Object { return &benchRecRegister{benchRegister{v: 0}} }),
		slx.WithEnv(func() run.Environment {
			return run.Script(map[int][]run.Invocation{
				1: {{Op: "write", Arg: 1}, {Op: "read"}},
				2: {{Op: "write", Arg: 2}, {Op: "read"}},
				3: {{Op: "write", Arg: 3}, {Op: "read"}},
			})
		}),
		slx.WithProcs(3),
		slx.WithDepth(7),
		slx.WithCrashes(1),
		slx.WithRecoveries(1),
	}
	return slx.New(append(opts, extra...)...)
}

func strictProp() slx.Property {
	return check.StrictLinearizability(check.RegisterSpec{Initial: 0})
}

// BenchmarkExploreRecoveryMonitor measures crash–recovery exploration
// on the default incremental path: the depth-7 register workload with a
// 1-crash/1-recovery failure budget under the strict-linearizability
// monitor.
func BenchmarkExploreRecoveryMonitor(b *testing.B) {
	benchExplore(b, recExploreChecker(), strictProp())
}

// BenchmarkExploreRecoveryCachePOR measures the same recovery workload
// with partial-order reduction and the state cache composed on top —
// the configuration CI gates, because recovery epochs participate in
// both footprints and fingerprints.
func BenchmarkExploreRecoveryCachePOR(b *testing.B) {
	benchExplore(b, recExploreChecker(slx.WithPOR(), slx.WithStateCache()), strictProp())
}

func benchExploreLinearizability(b *testing.B, c *slx.Checker) {
	benchExplore(b, c, linProp())
}

func benchExplore(b *testing.B, c *slx.Checker, prop slx.Property) {
	b.ReportAllocs()
	prefixes := 0
	for i := 0; i < b.N; i++ {
		rep, err := c.Explore(prop)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatalf("violation: %s", rep.Failures()[0])
		}
		if i == 0 {
			prefixes = rep.Prefixes
			b.ReportMetric(float64(rep.Prefixes), "prefixes")
			b.ReportMetric(float64(rep.SimSteps), "simSteps")
			b.ReportMetric(float64(rep.Resims), "resimSteps")
			b.ReportMetric(float64(rep.EventScans), "eventScans")
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*prefixes)/sec, "prefixes/sec")
	}
}
