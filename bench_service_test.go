package repro_test

// Service-throughput benchmark for the slxd exploration daemon: small
// exhaustive check jobs pushed through the full HTTP → queue → worker
// pool → results store path, with a bounded number in flight so the
// pool pipeline stays busy. The jobs/sec figure is wall-clock and
// advisory (committed in BENCH_explore.json's "service" section, graded
// by cmd/benchtrend without gating); the correctness half of the
// service — report parity with in-process checkers — is gated by the
// tests in internal/service.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
	"repro/slx"
)

// benchServiceInFlight bounds the submitted-but-unfinished window: deep
// enough to keep every pool worker busy, shallow enough that the store
// poll loop stays cheap.
const benchServiceInFlight = 32

// BenchmarkServiceThroughput measures end-to-end jobs/sec for depth-5
// consensus checks against a 4-worker daemon.
func BenchmarkServiceThroughput(b *testing.B) {
	srv, err := service.NewServer(service.Config{Workers: 4, Queue: 2 * benchServiceInFlight})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	spec, err := json.Marshal(service.JobSpec{Target: "consensus", Spec: slx.Spec{Depth: 5}})
	if err != nil {
		b.Fatal(err)
	}
	client := hs.Client()

	submit := func() string {
		resp, err := client.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(spec))
		if err != nil {
			b.Fatal(err)
		}
		var j service.Job
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit: status %d", resp.StatusCode)
		}
		return j.ID
	}
	await := func(id string) {
		for {
			resp, err := client.Get(hs.URL + "/v1/jobs/" + id)
			if err != nil {
				b.Fatal(err)
			}
			var j service.Job
			if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			switch j.State {
			case service.StateDone:
				return
			case service.StateFailed, service.StateCancelled:
				b.Fatalf("job %s: %s (%s)", id, j.State, j.Error)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	pending := make([]string, 0, benchServiceInFlight)
	for i := 0; i < b.N; i++ {
		if len(pending) == benchServiceInFlight {
			await(pending[0])
			pending = pending[1:]
		}
		pending = append(pending, submit())
	}
	for _, id := range pending {
		await(id)
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "jobs/sec")
	}
	// The store now holds b.N terminal jobs; sanity-check one count so a
	// silently dropped job cannot inflate the figure.
	if done := srv.Metrics().JobsDone.Load(); done != int64(b.N) {
		b.Fatalf("daemon finished %d jobs, submitted %d", done, b.N)
	}
}
